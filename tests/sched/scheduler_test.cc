// The cell scheduler and the cache-validity contract:
//
//   1. run_plan reproduces core::run_replicates bit for bit (the scheduler
//      is pure measurement infrastructure).
//   2. A replicate loaded from the cache is bitwise identical to the same
//      replicate computed fresh — for CONTROL and ALGO+IMPL alike.
//   3. A warm-cache rerun trains nothing (trained == 0, zero misses).
//   4. A corrupted cache entry degrades to recompute with identical results.
//   5. Changing cell content (epochs) invalidates the cached entries.
#include "sched/scheduler.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "core/replicates.h"
#include "data/synth_images.h"
#include "nn/zoo.h"
#include "sched/cell_key.h"
#include "sched/fs_cache_backend.h"

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;

void expect_bitwise_equal(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.test_predictions, b.test_predictions);
  EXPECT_EQ(a.test_confidences, b.test_confidences);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
}

class SchedulerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ClassificationDataset(data::synth_cifar10(96, 48));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  void SetUp() override {
    cache_dir_ = fs::temp_directory_path() /
                 ("nnr_sched_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(cache_dir_);
  }
  void TearDown() override { fs::remove_all(cache_dir_); }

  static core::Task tiny_task() {
    core::Task task;
    task.name = "tiny";
    task.dataset = *dataset_;
    task.make_model = [] { return nn::small_cnn(10, true); };
    task.recipe = core::cifar_recipe(2);
    task.default_replicates = 2;
    return task;
  }

  static StudyPlan tiny_plan(core::NoiseVariant variant,
                             std::int64_t replicates) {
    StudyPlan plan("sched_test");
    plan.add_cell(plan.own_task(tiny_task()), variant, hw::v100(),
                  replicates);
    return plan;
  }

  fs::path cache_dir_;
  static data::ClassificationDataset* dataset_;
};

data::ClassificationDataset* SchedulerTest::dataset_ = nullptr;

RunOptions with_threads(int threads) {
  RunOptions opts;
  opts.threads = threads;
  return opts;
}

TEST_F(SchedulerTest, MatchesRunReplicatesBitwise) {
  const StudyPlan plan = tiny_plan(core::NoiseVariant::kAlgoPlusImpl, 2);
  const StudyResult study = run_plan(plan, with_threads(1));
  const auto reference =
      core::run_replicates(plan.cells()[0].job, 2, /*threads=*/1);
  ASSERT_EQ(study.cells.size(), 1u);
  ASSERT_EQ(study.cells[0].size(), reference.size());
  for (std::size_t r = 0; r < reference.size(); ++r) {
    expect_bitwise_equal(study.cells[0][r], reference[r]);
  }
  EXPECT_EQ(study.trained, 2);
}

TEST_F(SchedulerTest, ResultInvariantToThreadCap) {
  const StudyPlan plan = tiny_plan(core::NoiseVariant::kAlgoPlusImpl, 3);
  const StudyResult serial = run_plan(plan, with_threads(-1));
  const StudyResult wide = run_plan(plan, with_threads(3));
  for (std::size_t r = 0; r < 3; ++r) {
    expect_bitwise_equal(serial.cells[0][r], wide.cells[0][r]);
  }
}

// The acceptance-criterion test: cached == fresh, bit for bit, across both
// the deterministic and the fully noisy variant.
class SchedulerCacheContract
    : public SchedulerTest,
      public ::testing::WithParamInterface<core::NoiseVariant> {};

TEST_P(SchedulerCacheContract, CachedReplicateIsBitwiseIdenticalToFresh) {
  const StudyPlan plan = tiny_plan(GetParam(), 2);
  const StudyResult fresh = run_plan(plan);

  FsCacheBackend cache(cache_dir_.string());
  RunOptions opts;
  opts.cache = &cache;
  const StudyResult cold = run_plan(plan, opts);
  EXPECT_EQ(cold.cache.misses, 2);
  EXPECT_EQ(cold.cache.stores, 2);
  EXPECT_EQ(cold.trained, 2);

  const StudyResult warm = run_plan(plan, opts);
  EXPECT_EQ(warm.cache.hits, 2);
  EXPECT_EQ(warm.cache.misses, 0);
  EXPECT_EQ(warm.trained, 0) << "warm cache must retrain nothing";

  for (std::size_t r = 0; r < 2; ++r) {
    expect_bitwise_equal(cold.cells[0][r], fresh.cells[0][r]);
    expect_bitwise_equal(warm.cells[0][r], fresh.cells[0][r]);
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, SchedulerCacheContract,
                         ::testing::Values(core::NoiseVariant::kControl,
                                           core::NoiseVariant::kAlgoPlusImpl),
                         [](const auto& info) {
                           return info.param == core::NoiseVariant::kControl
                                      ? "Control"
                                      : "AlgoPlusImpl";
                         });

TEST_F(SchedulerTest, CorruptedCacheEntryRecomputesIdentically) {
  const StudyPlan plan = tiny_plan(core::NoiseVariant::kControl, 1);
  FsCacheBackend cache(cache_dir_.string());
  RunOptions opts;
  opts.cache = &cache;
  const StudyResult cold = run_plan(plan, opts);

  // Truncate the single entry on disk.
  const Cell& cell = plan.cells()[0];
  const std::string path = cache.path_for(cell_key(cell, cell.ids_for(0)));
  ASSERT_TRUE(fs::exists(path));
  fs::resize_file(path, 16);

  const StudyResult recovered = run_plan(plan, opts);
  EXPECT_EQ(recovered.cache.corrupt, 1);
  EXPECT_EQ(recovered.trained, 1) << "corrupt entry must be recomputed";
  expect_bitwise_equal(recovered.cells[0][0], cold.cells[0][0]);

  // The recompute re-stored a good entry; the next run is a pure hit.
  const StudyResult warm = run_plan(plan, opts);
  EXPECT_EQ(warm.cache.hits, 1);
  EXPECT_EQ(warm.trained, 0);
}

TEST_F(SchedulerTest, ChangedEpochsMissTheCache) {
  FsCacheBackend cache(cache_dir_.string());
  RunOptions opts;
  opts.cache = &cache;
  (void)run_plan(tiny_plan(core::NoiseVariant::kControl, 1), opts);

  StudyPlan longer = tiny_plan(core::NoiseVariant::kControl, 1);
  longer.cells()[0].job.recipe.epochs += 1;
  const StudyResult rerun = run_plan(longer, opts);
  EXPECT_EQ(rerun.cache.hits, 0);
  EXPECT_EQ(rerun.trained, 1);
}

TEST_F(SchedulerTest, UncacheableCellAlwaysTrains) {
  StudyPlan plan("runner_test");
  std::atomic<int> counter{0};
  Cell& cell = plan.add_cell(plan.own_task(tiny_task()),
                             core::NoiseVariant::kControl, hw::v100(), 1);
  cell.runner = [&counter](const core::TrainJob& job, core::ReplicateIds ids) {
    counter.fetch_add(1);
    return core::train_replicate(job, ids);
  };  // no runner_id -> uncacheable
  FsCacheBackend cache(cache_dir_.string());
  RunOptions opts;
  opts.cache = &cache;
  (void)run_plan(plan, opts);
  (void)run_plan(plan, opts);
  EXPECT_EQ(counter.load(), 2);
  EXPECT_EQ(cache.stats().stores, 0);
}

TEST_F(SchedulerTest, NamedRunnerIsCachedAndReplayed) {
  StudyPlan plan("runner_test");
  std::atomic<int> counter{0};
  Cell& cell = plan.add_cell(plan.own_task(tiny_task()),
                             core::NoiseVariant::kControl, hw::v100(), 1);
  cell.runner_id = "counting";
  cell.runner = [&counter](const core::TrainJob& job, core::ReplicateIds ids) {
    counter.fetch_add(1);
    return core::train_replicate(job, ids);
  };
  FsCacheBackend cache(cache_dir_.string());
  RunOptions opts;
  opts.cache = &cache;
  const StudyResult cold = run_plan(plan, opts);
  const StudyResult warm = run_plan(plan, opts);
  EXPECT_EQ(counter.load(), 1) << "second run must be served from the cache";
  expect_bitwise_equal(warm.cells[0][0], cold.cells[0][0]);
}

TEST_F(SchedulerTest, MismatchedExplicitIdsThrow) {
  StudyPlan plan("factorial_test");
  Cell& cell = plan.add_cell(plan.own_task(tiny_task()),
                             core::NoiseVariant::kControl, hw::v100(), 3);
  cell.explicit_ids = {{0, 0}, {1, 1}};  // 2 ids for 3 replicates
  EXPECT_THROW((void)run_plan(plan), std::invalid_argument);
}

TEST_F(SchedulerTest, FactorialExplicitIdsMatchDirectTraining) {
  StudyPlan plan("factorial_test");
  Cell& cell = plan.add_cell(plan.own_task(tiny_task()),
                             core::NoiseVariant::kAlgoPlusImpl, hw::v100(), 2);
  cell.explicit_ids = {{0, 1}, {1, 0}};
  const StudyResult study = run_plan(plan, with_threads(1));
  expect_bitwise_equal(study.cells[0][0],
                       core::train_replicate(cell.job, {0, 1}));
  expect_bitwise_equal(study.cells[0][1],
                       core::train_replicate(cell.job, {1, 0}));
}

// Two runs sharing one cache dir via separate cache objects — exactly the
// posture of two `nnr_run --study` processes — must partition the grid:
// every key trains exactly once between them, per-run stats are exact
// (hits + trained == total for each run, impossible with snapshot deltas),
// and both observe bitwise-identical results.
TEST_F(SchedulerTest, ConcurrentRunsPartitionASharedCache) {
  constexpr std::int64_t kReplicates = 4;
  const StudyPlan plan_a = tiny_plan(core::NoiseVariant::kControl, kReplicates);
  const StudyPlan plan_b = tiny_plan(core::NoiseVariant::kControl, kReplicates);
  FsCacheBackend cache_a(cache_dir_.string());
  FsCacheBackend cache_b(cache_dir_.string());
  StudyResult result_a;
  StudyResult result_b;
  std::thread runner_a([&] {
    RunOptions opts;
    opts.threads = -1;  // serial inside; the two OS threads contend
    opts.cache = &cache_a;
    result_a = run_plan(plan_a, opts);
  });
  std::thread runner_b([&] {
    RunOptions opts;
    opts.threads = -1;
    opts.cache = &cache_b;
    result_b = run_plan(plan_b, opts);
  });
  runner_a.join();
  runner_b.join();

  EXPECT_EQ(result_a.trained + result_b.trained, kReplicates)
      << "each key must train exactly once across the two runs";
  for (const StudyResult* result : {&result_a, &result_b}) {
    EXPECT_EQ(result->cache.hits + result->trained, kReplicates)
        << "per-run stats must be exact under concurrency";
    EXPECT_EQ(result->cache.corrupt, 0);
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(kReplicates); ++r) {
    expect_bitwise_equal(result_a.cells[0][r], result_b.cells[0][r]);
  }
}

// The resume contract: a study interrupted mid-grid (here: a prefix of the
// replicate grid already cached, as a killed run leaves behind) trains
// exactly the remaining replicates and ends bitwise identical to an
// uninterrupted run. The process-level kill -9 variant lives in
// tests/scripts/kill_resume_test.sh.
TEST_F(SchedulerTest, ResumedStudyTrainsExactlyTheRemainingReplicates) {
  const StudyPlan uninterrupted = tiny_plan(core::NoiseVariant::kControl, 4);
  const StudyResult fresh = run_plan(uninterrupted);

  FsCacheBackend cache(cache_dir_.string());
  RunOptions opts;
  opts.cache = &cache;
  // "Interrupted" run: only the first 2 replicates completed before the
  // kill; both are durably keyed on disk.
  const StudyResult partial =
      run_plan(tiny_plan(core::NoiseVariant::kControl, 2), opts);
  EXPECT_EQ(partial.trained, 2);

  const StudyResult resumed = run_plan(uninterrupted, opts);
  EXPECT_EQ(resumed.trained, 2) << "resume must train only the missing cells";
  EXPECT_EQ(resumed.cache.hits, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    expect_bitwise_equal(resumed.cells[0][r], fresh.cells[0][r]);
  }
}

TEST_F(SchedulerTest, CompletionCallbackSeesEveryReplicate) {
  const StudyPlan plan = tiny_plan(core::NoiseVariant::kControl, 3);
  FsCacheBackend cache(cache_dir_.string());
  std::vector<ReplicateEvent> events;
  RunOptions opts;
  opts.cache = &cache;
  opts.on_replicate = [&events](const ReplicateEvent& event) {
    events.push_back(event);
  };
  (void)run_plan(plan, opts);
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].done, static_cast<std::int64_t>(i) + 1)
        << "done must increase monotonically (callbacks are serialized)";
    EXPECT_EQ(events[i].total, 3);
    EXPECT_FALSE(events[i].from_cache);
  }
  events.clear();
  (void)run_plan(plan, opts);  // warm rerun: everything served from disk
  ASSERT_EQ(events.size(), 3u);
  for (const ReplicateEvent& event : events) {
    EXPECT_TRUE(event.from_cache);
  }
}

// Batched submission: duplicate cacheable keys across queued plans are
// coalesced — trained once, shared in-memory, bit-identical everywhere.
TEST_F(SchedulerTest, BatchCoalescesDuplicateKeysAcrossPlans) {
  const StudyPlan plan_a = tiny_plan(core::NoiseVariant::kControl, 2);
  const StudyPlan plan_b = tiny_plan(core::NoiseVariant::kControl, 2);
  const BatchResult batch = run_batch({&plan_a, &plan_b});
  EXPECT_EQ(batch.trained, 2) << "each unique key must train exactly once";
  EXPECT_EQ(batch.coalesced, 2);
  ASSERT_EQ(batch.studies.size(), 2u);
  const StudyResult fresh = run_plan(tiny_plan(core::NoiseVariant::kControl,
                                               2));
  for (std::size_t r = 0; r < 2; ++r) {
    expect_bitwise_equal(batch.studies[0].cells[0][r], fresh.cells[0][r]);
    expect_bitwise_equal(batch.studies[1].cells[0][r], fresh.cells[0][r]);
  }
}

TEST_F(SchedulerTest, BatchWithCacheSharesOneClaimPass) {
  const StudyPlan plan_a = tiny_plan(core::NoiseVariant::kControl, 2);
  const StudyPlan plan_b = tiny_plan(core::NoiseVariant::kControl, 2);
  FsCacheBackend cache(cache_dir_.string());
  RunOptions opts;
  opts.cache = &cache;
  const BatchResult cold = run_batch({&plan_a, &plan_b}, opts);
  EXPECT_EQ(cold.trained, 2);
  EXPECT_EQ(cold.coalesced, 2);
  EXPECT_EQ(cold.cache.stores, 2) << "only leaders touch the cache";
  EXPECT_EQ(cold.cache.misses, 2);
  const BatchResult warm = run_batch({&plan_a, &plan_b}, opts);
  EXPECT_EQ(warm.trained, 0);
  EXPECT_EQ(warm.cache.hits, 2);
  EXPECT_EQ(warm.coalesced, 2);
  for (std::size_t p = 0; p < 2; ++p) {
    // Per-study invariant: hits + trained + coalesced == replicates.
    const StudyResult& study = warm.studies[p];
    EXPECT_EQ(study.cache.hits + study.trained + study.coalesced, 2);
    for (std::size_t r = 0; r < 2; ++r) {
      expect_bitwise_equal(warm.studies[p].cells[0][r],
                           cold.studies[p].cells[0][r]);
    }
  }
}

TEST_F(SchedulerTest, BatchEventsCarryTheStudyIndex) {
  // Distinct variants -> distinct keys -> nothing coalesces; every
  // replicate fires one event tagged with its plan's index.
  const StudyPlan plan_a = tiny_plan(core::NoiseVariant::kControl, 2);
  const StudyPlan plan_b = tiny_plan(core::NoiseVariant::kAlgoPlusImpl, 1);
  std::vector<ReplicateEvent> events;
  RunOptions opts;
  opts.on_replicate = [&events](const ReplicateEvent& event) {
    events.push_back(event);
  };
  const BatchResult batch = run_batch({&plan_a, &plan_b}, opts);
  EXPECT_EQ(batch.coalesced, 0);
  ASSERT_EQ(events.size(), 3u);
  int seen_a = 0;
  int seen_b = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].done, static_cast<std::int64_t>(i) + 1);
    EXPECT_EQ(events[i].total, 3);
    if (events[i].study == 0) ++seen_a;
    if (events[i].study == 1) ++seen_b;
  }
  EXPECT_EQ(seen_a, 2);
  EXPECT_EQ(seen_b, 1);
}

TEST_F(SchedulerTest, EmptyBatchIsANoOp) {
  const BatchResult batch = run_batch({});
  EXPECT_TRUE(batch.studies.empty());
  EXPECT_EQ(batch.trained, 0);
}

TEST_F(SchedulerTest, CacheStatsTableListsAllCounters) {
  StudyResult result;
  result.cache.hits = 3;
  result.trained = 7;
  const core::TextTable table = cache_stats_table(result);
  ASSERT_EQ(table.rows().size(), 7u);
  EXPECT_EQ(table.rows()[0][0], "hits");
  EXPECT_EQ(table.rows()[0][1], "3");
  EXPECT_EQ(table.rows()[6][0], "trained");
  EXPECT_EQ(table.rows()[6][1], "7");
}

}  // namespace
}  // namespace nnr::sched
