// ShardedCacheBackend tests, in two tiers:
//
//   1. Rendezvous-routing property suite (no servers): pick_shard is a
//      pure function of (key, shard tags), permutation-invariant, χ²-
//      uniform over 10k sampled keys, and minimal under shard removal —
//      only the removed shard's keys move. These are the properties the
//      header promises; they are what make the sharded tier's placement
//      replayable and its rebalancing cost bounded.
//
//   2. Composite-behavior suite (in-process CacheServer shards): keys land
//      in their owner shard's directory, a down shard degrades only its
//      own key range while the others stay hot, a revived shard turns
//      back into hits on the probe schedule, and verify_disjoint catches
//      two shard slots backed by one directory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/cache_server.h"
#include "sched/fs_cache_backend.h"
#include "sched/remote_cache_backend.h"
#include "sched/sharded_cache_backend.h"

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

core::RunResult sample_result() {
  core::RunResult r;
  r.test_predictions = {1, 0, 2, 3};
  r.test_confidences = {0.5F, 0.25F, 1.0F, 0.125F};
  r.final_weights = {0.5F, -2.0F, 1.25F};
  r.test_accuracy = 0.5;
  r.final_train_loss = 0.75;
  return r;
}

/// Deterministic 64-bit stream for sampling synthetic CellKeys (production
/// keys are uniform content hashes; splitmix64 models that well enough for
/// the distribution properties under test).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<CellKey> sample_keys(std::size_t n, std::uint64_t seed = 42) {
  std::vector<CellKey> keys;
  keys.reserve(n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t hi = splitmix64(state);
    const std::uint64_t lo = splitmix64(state);
    keys.push_back(CellKey{hi, lo});
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Tier 1: routing properties.
// ---------------------------------------------------------------------------

TEST(SplitCacheUrlsTest, SplitsTrimsAndDropsEmptyTokens) {
  EXPECT_EQ(split_cache_urls("tcp://a:1"),
            (std::vector<std::string>{"tcp://a:1"}));
  EXPECT_EQ(split_cache_urls("tcp://a:1,tcp://b:2"),
            (std::vector<std::string>{"tcp://a:1", "tcp://b:2"}));
  EXPECT_EQ(split_cache_urls(" tcp://a:1 ,\ttcp://b:2 ,"),
            (std::vector<std::string>{"tcp://a:1", "tcp://b:2"}));
  EXPECT_TRUE(split_cache_urls("").empty());
  EXPECT_TRUE(split_cache_urls(" , ,, ").empty());
}

TEST(RendezvousHashTest, PickShardIsPureInItsInputs) {
  const std::vector<std::uint64_t> tags = {
      shard_tag("tcp://a:1"), shard_tag("tcp://b:2"), shard_tag("tcp://c:3")};
  for (const CellKey& key : sample_keys(256)) {
    const std::size_t first = pick_shard(key, tags);
    EXPECT_EQ(pick_shard(key, tags), first)
        << "routing must be deterministic for a fixed (key, shard map)";
  }
}

TEST(RendezvousHashTest, WinnerIsInvariantUnderShardMapPermutation) {
  // Two clients listing the same shards in different order must still
  // agree on every key's owner — the winner is a shard IDENTITY (tag),
  // not a slot index.
  const std::vector<std::uint64_t> abc = {
      shard_tag("tcp://a:1"), shard_tag("tcp://b:2"), shard_tag("tcp://c:3")};
  const std::vector<std::uint64_t> cab = {abc[2], abc[0], abc[1]};
  for (const CellKey& key : sample_keys(2048)) {
    EXPECT_EQ(abc[pick_shard(key, abc)], cab[pick_shard(key, cab)])
        << "a permuted shard map must elect the same winning tag";
  }
}

TEST(RendezvousHashTest, KeysSpreadUniformlyChiSquared) {
  // 10k keys over 3 shards: χ² with 2 degrees of freedom has mean 2; a
  // skewed mix (e.g. a score that decomposes into f(key) ^ g(tag)) blows
  // far past any reasonable bound. 50 is ~11 sigma of headroom — loose
  // enough to never flake, tight enough to catch a broken mix.
  const std::vector<std::uint64_t> tags = {
      shard_tag("tcp://a:1"), shard_tag("tcp://b:2"), shard_tag("tcp://c:3")};
  const std::vector<CellKey> keys = sample_keys(10'000);
  std::vector<double> counts(tags.size(), 0.0);
  for (const CellKey& key : keys) counts[pick_shard(key, tags)] += 1.0;
  const double expected =
      static_cast<double>(keys.size()) / static_cast<double>(tags.size());
  double chi2 = 0.0;
  for (const double count : counts) {
    chi2 += (count - expected) * (count - expected) / expected;
  }
  EXPECT_LT(chi2, 50.0) << "shard distribution is not uniform: " << counts[0]
                        << "/" << counts[1] << "/" << counts[2];
  for (const double count : counts) {
    EXPECT_GT(count, expected * 0.8) << "one shard is starved";
  }
}

TEST(RendezvousHashTest, RemovingAShardMovesOnlyItsKeys) {
  // The minimal-movement property that justifies HRW over mod-N: dropping
  // shard C from the map must leave every A- and B-owned key exactly
  // where it was, and strand only C's keys (≈ a third of them).
  const std::uint64_t tag_a = shard_tag("tcp://a:1");
  const std::uint64_t tag_b = shard_tag("tcp://b:2");
  const std::uint64_t tag_c = shard_tag("tcp://c:3");
  const std::vector<std::uint64_t> full = {tag_a, tag_b, tag_c};
  const std::vector<std::uint64_t> survivors = {tag_a, tag_b};

  const std::vector<CellKey> keys = sample_keys(10'000);
  std::size_t owned_by_c = 0;
  for (const CellKey& key : keys) {
    const std::uint64_t before = full[pick_shard(key, full)];
    const std::uint64_t after = survivors[pick_shard(key, survivors)];
    if (before == tag_c) {
      ++owned_by_c;  // stranded keys may land anywhere among survivors
    } else {
      EXPECT_EQ(before, after)
          << "a surviving shard lost a key it already owned — movement "
             "is not minimal";
    }
  }
  // Sanity: the removed shard actually owned a meaningful share, so the
  // assertion above covered real keys on both sides.
  EXPECT_GT(owned_by_c, keys.size() / 5);
  EXPECT_LT(owned_by_c, keys.size() / 2);
}

TEST(RendezvousHashTest, PickShardRejectsAnEmptyMap) {
  EXPECT_THROW((void)pick_shard(CellKey{1, 2}, {}), std::invalid_argument);
}

TEST(ShardedConstructionTest, RejectsEmptyDuplicateAndMalformedMaps) {
  EXPECT_THROW(ShardedCacheBackend(std::vector<std::string>{}),
               std::invalid_argument);
  EXPECT_THROW((ShardedCacheBackend({"tcp://a:1", "tcp://b:2", "tcp://a:1"})),
               std::invalid_argument);
  EXPECT_THROW((ShardedCacheBackend({"tcp://a:1", "http://b:2"})),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Tier 2: composite behavior against in-process shard daemons.
// ---------------------------------------------------------------------------

/// An in-process daemon on an ephemeral loopback port (same shape as the
/// conformance suite's helper; separate TU, separate copy).
class ServerHandle {
 public:
  bool start(const std::string& dir, std::uint16_t port = 0) {
    CacheServerConfig config;
    config.dir = dir;
    config.port = port;
    server_ = std::make_unique<CacheServer>(std::move(config));
    if (!server_->start()) return false;
    thread_ = std::thread([this] { server_->run(); });
    return true;
  }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

  void stop() {
    if (server_ != nullptr) {
      server_->stop();
      thread_.join();
      server_.reset();
    }
  }

  ~ServerHandle() { stop(); }

 private:
  std::unique_ptr<CacheServer> server_;
  std::thread thread_;
};

class ShardedCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_sharded_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(dir_);
  }

  void TearDown() override {
    for (auto& shard : shards_) shard->stop();
    shards_.clear();
    fs::remove_all(dir_);
  }

  void start_shards(int count) {
    for (int i = 0; i < count; ++i) {
      auto shard = std::make_unique<ServerHandle>();
      ASSERT_TRUE(shard->start(shard_dir(i).string()));
      shards_.push_back(std::move(shard));
    }
  }

  [[nodiscard]] fs::path shard_dir(int index) const {
    return dir_ / ("shard" + std::to_string(index));
  }

  [[nodiscard]] std::vector<std::string> urls() const {
    std::vector<std::string> out;
    for (const auto& shard : shards_) {
      out.push_back("tcp://127.0.0.1:" + std::to_string(shard->port()));
    }
    return out;
  }

  /// A composite with fast timeouts, a pinned jitter seed, and a probe
  /// schedule the caller picks: long (probes never fire inside a test)
  /// or short (revival tests poll across it).
  std::unique_ptr<ShardedCacheBackend> make_backend(int probe_ms = 60'000) {
    ShardedCacheOptions options;
    options.remote.lease_ttl_ms = 2000;
    options.remote.io_timeout_ms = 2000;
    options.remote.connect_timeout_ms = 500;
    options.remote.reconnect_backoff_ms = 50;
    options.remote.claim_poll_ms = 10;
    options.probe_backoff_ms = probe_ms;
    options.probe_backoff_max_ms = std::max(probe_ms, 60'000);
    options.jitter_seed = 0x5EED;
    return std::make_unique<ShardedCacheBackend>(urls(), options);
  }

  /// A key owned by shard `owner` under the current map (searches the
  /// deterministic sample stream; routing is pure, so this terminates
  /// fast for any live shard).
  CellKey key_owned_by(ShardedCacheBackend& backend, std::size_t owner) {
    for (const CellKey& key : sample_keys(4096, /*seed=*/owner + 7)) {
      if (backend.shard_for(key) == owner) return key;
    }
    ADD_FAILURE() << "no sampled key routed to shard " << owner;
    return CellKey{0, 0};
  }

  fs::path dir_;
  std::vector<std::unique_ptr<ServerHandle>> shards_;
};

TEST_F(ShardedCacheTest, StoresLandInTheOwnerShardsDirectory) {
  start_shards(2);
  auto backend = make_backend();
  for (std::size_t owner = 0; owner < 2; ++owner) {
    const CellKey key = key_owned_by(*backend, owner);
    ASSERT_TRUE(backend->store(key, sample_result()));
    const std::string in_owner =
        FsCacheBackend(shard_dir(static_cast<int>(owner)).string())
            .path_for(key);
    const std::string in_other =
        FsCacheBackend(shard_dir(static_cast<int>(1 - owner)).string())
            .path_for(key);
    EXPECT_TRUE(fs::exists(in_owner))
        << "entry must live in its owner shard's directory";
    EXPECT_FALSE(fs::exists(in_other))
        << "entry must not be duplicated onto another shard";
    EXPECT_TRUE(backend->load(key).has_value());
  }
}

TEST_F(ShardedCacheTest, DownShardDegradesOnlyItsOwnKeyRange) {
  start_shards(3);
  auto backend = make_backend();  // probes never fire during this test
  const CellKey key0 = key_owned_by(*backend, 0);
  const CellKey key2 = key_owned_by(*backend, 2);
  ASSERT_TRUE(backend->store(key0, sample_result()));
  ASSERT_TRUE(backend->store(key2, sample_result()));

  shards_[2]->stop();

  // The dead shard's keys degrade: miss, dropped store, local no-op claim.
  CacheStats run;
  EXPECT_FALSE(backend->load(key2, &run).has_value());
  EXPECT_EQ(run.misses, 1);
  EXPECT_TRUE(backend->shard_marked_down(2));
  EXPECT_FALSE(backend->store(key2, sample_result(), &run));
  EXPECT_TRUE(backend->try_claim(key2).has_value())
      << "degraded claims must grant a local no-op (train, don't wedge)";
  EXPECT_TRUE(backend->claim(key2).has_value());

  // The surviving shards' keys stay hot — including claims.
  EXPECT_TRUE(backend->load(key0, &run).has_value());
  EXPECT_FALSE(backend->shard_marked_down(0));
  const CellKey fresh1 = key_owned_by(*backend, 1);
  ASSERT_TRUE(backend->store(fresh1, sample_result()));
  EXPECT_TRUE(backend->load(fresh1).has_value());
}

TEST_F(ShardedCacheTest, RevivedShardTurnsBackIntoHitsViaProbes) {
  start_shards(2);
  auto backend = make_backend(/*probe_ms=*/50);
  const CellKey key = key_owned_by(*backend, 1);
  ASSERT_TRUE(backend->store(key, sample_result()));

  const std::uint16_t port = shards_[1]->port();
  shards_[1]->stop();
  EXPECT_FALSE(backend->load(key).has_value());
  EXPECT_TRUE(backend->shard_marked_down(1));

  // Same directory, same port — the revived shard still holds the entry.
  ASSERT_TRUE(shards_[1]->start(shard_dir(1).string(), port));
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  std::optional<core::RunResult> loaded;
  while (!loaded.has_value() && Clock::now() < deadline) {
    loaded = backend->load(key, nullptr, /*count_miss=*/false);
    if (!loaded.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_TRUE(loaded.has_value())
      << "probe schedule must fold a revived shard back in";
  EXPECT_FALSE(backend->shard_marked_down(1));
}

TEST_F(ShardedCacheTest, VerifyDisjointPassesOnDistinctDirs) {
  start_shards(3);
  auto backend = make_backend();
  EXPECT_EQ(backend->verify_disjoint(), std::nullopt);
}

TEST_F(ShardedCacheTest, VerifyDisjointDetectsASharedDirectory) {
  // Two daemons in front of ONE directory: the misconfiguration that
  // silently halves a tier (each key readable through two shard slots).
  start_shards(1);
  auto twin = std::make_unique<ServerHandle>();
  ASSERT_TRUE(twin->start(shard_dir(0).string()));
  shards_.push_back(std::move(twin));
  auto backend = make_backend();
  const auto violation = backend->verify_disjoint();
  ASSERT_TRUE(violation.has_value())
      << "two shard slots over one directory must be reported";
  EXPECT_NE(violation->find("dir"), std::string::npos) << *violation;
}

TEST_F(ShardedCacheTest, ShardInfoPersistsDirUidAndBumpsBootEpoch) {
  start_shards(1);
  RemoteCacheOptions options;
  options.connect_timeout_ms = 500;
  options.io_timeout_ms = 2000;
  auto client = std::make_unique<RemoteCacheBackend>(urls()[0], options);
  const auto first = client->shard_info();
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->instance_id, 0u);
  EXPECT_NE(first->dir_uid, 0u);
  EXPECT_GE(first->boot_epoch, 1u);

  // Restart on the same directory and port: the uid is the DIRECTORY's
  // identity (persisted in shard_id.nnr) so it survives; the epoch counts
  // boots; the instance id is per-process.
  const std::uint16_t port = shards_[0]->port();
  shards_[0]->stop();
  ASSERT_TRUE(shards_[0]->start(shard_dir(0).string(), port));
  client->disconnect();
  const auto second = client->shard_info();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->dir_uid, first->dir_uid);
  EXPECT_EQ(second->boot_epoch, first->boot_epoch + 1);
  EXPECT_NE(second->instance_id, first->instance_id);
}

TEST_F(ShardedCacheTest, StatsSumAcrossShardsAndCountDegradedMisses) {
  start_shards(2);
  auto backend = make_backend();
  const CellKey key0 = key_owned_by(*backend, 0);
  const CellKey key1 = key_owned_by(*backend, 1);
  ASSERT_TRUE(backend->store(key0, sample_result()));
  ASSERT_TRUE(backend->store(key1, sample_result()));
  ASSERT_TRUE(backend->load(key0).has_value());
  ASSERT_TRUE(backend->load(key1).has_value());
  CacheStats stats = backend->stats();
  EXPECT_EQ(stats.stores, 2);
  EXPECT_EQ(stats.hits, 2);

  shards_[1]->stop();
  EXPECT_FALSE(backend->load(key1).has_value());  // marks shard 1 down
  EXPECT_FALSE(backend->load(key1).has_value());  // short-circuited miss
  stats = backend->stats();
  EXPECT_GE(stats.misses, 2)
      << "misses on a down shard must be visible in the composite stats";
}

TEST_F(ShardedCacheTest, GcSweepsReachableShardsAndSumsTotals) {
  start_shards(2);
  auto backend = make_backend();
  ASSERT_TRUE(backend->store(key_owned_by(*backend, 0), sample_result()));
  ASSERT_TRUE(backend->store(key_owned_by(*backend, 1), sample_result()));
  const GcStats gc = backend->gc();
  EXPECT_EQ(gc.entries, 2);
  EXPECT_GT(gc.bytes, 0);
}

}  // namespace
}  // namespace nnr::sched
