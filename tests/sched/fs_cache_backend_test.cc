// FsCacheBackend: hit/miss accounting, atomic stores, the failure policy —
// a corrupted, truncated, or foreign entry must degrade to a miss
// (recompute), never crash the study — plus the hardening surfaces:
// exact per-run stats, cross-process claims, LRU eviction under a byte
// budget (never an in-flight key), and GC of orphaned temp/lock files.
#include "sched/fs_cache_backend.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;

core::RunResult sample_result() {
  core::RunResult r;
  r.test_predictions = {0, 3, 1, 2};
  r.test_confidences = {0.25F, 0.5F, 0.125F, 1.0F};
  r.final_weights = {-1.5F, 0.0F, 2.25F};
  r.test_accuracy = 0.75;
  r.final_train_loss = 1.25;
  return r;
}

void expect_bitwise_equal(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.test_predictions, b.test_predictions);
  EXPECT_EQ(a.test_confidences, b.test_confidences);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
}

class FsCacheBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_cache_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FsCacheBackendTest, DisabledCacheIsInert) {
  FsCacheBackend cache("");
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.load({1, 2}).has_value());
  EXPECT_FALSE(cache.store({1, 2}, sample_result()));
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.stats().stores, 0);
}

TEST_F(FsCacheBackendTest, MissOnEmptyCache) {
  FsCacheBackend cache(dir_.string());
  EXPECT_FALSE(cache.load({1, 2}).has_value());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST_F(FsCacheBackendTest, StoreThenLoadRoundTripsBitwise) {
  FsCacheBackend cache(dir_.string());
  const CellKey key{0xAB, 0xCD};
  ASSERT_TRUE(cache.store(key, sample_result()));
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_bitwise_equal(*loaded, sample_result());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.stores, 1);
  EXPECT_GT(stats.bytes_written, 0);
  EXPECT_EQ(stats.bytes_read, stats.bytes_written);
}

TEST_F(FsCacheBackendTest, DistinctKeysAreDistinctEntries) {
  FsCacheBackend cache(dir_.string());
  ASSERT_TRUE(cache.store({1, 1}, sample_result()));
  EXPECT_FALSE(cache.load({1, 2}).has_value());
  EXPECT_TRUE(cache.load({1, 1}).has_value());
}

TEST_F(FsCacheBackendTest, CorruptedEntryFallsBackToMiss) {
  FsCacheBackend cache(dir_.string());
  const CellKey key{7, 9};
  ASSERT_TRUE(cache.store(key, sample_result()));
  {
    // Flip one payload byte past the header.
    std::fstream f(cache.path_for(key),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);
    char c = 0;
    f.read(&c, 1);
    f.seekp(32);
    c = static_cast<char>(c ^ 0x5A);
    f.write(&c, 1);
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(FsCacheBackendTest, TruncatedEntryFallsBackToMiss) {
  FsCacheBackend cache(dir_.string());
  const CellKey key{7, 10};
  ASSERT_TRUE(cache.store(key, sample_result()));
  fs::resize_file(cache.path_for(key), 20);
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
}

TEST_F(FsCacheBackendTest, ForeignEntryUnderWrongKeyIsRejected) {
  // A cache file renamed to another key's address must not be served: the
  // embedded key is verified on load.
  FsCacheBackend cache(dir_.string());
  const CellKey key_a{100, 1};
  const CellKey key_b{100, 2};
  ASSERT_TRUE(cache.store(key_a, sample_result()));
  fs::copy_file(cache.path_for(key_a), cache.path_for(key_b));
  EXPECT_FALSE(cache.load(key_b).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
  EXPECT_TRUE(cache.load(key_a).has_value());
}

TEST_F(FsCacheBackendTest, StoreOverwritesInPlace) {
  FsCacheBackend cache(dir_.string());
  const CellKey key{5, 5};
  core::RunResult first = sample_result();
  ASSERT_TRUE(cache.store(key, first));
  core::RunResult second = sample_result();
  second.test_accuracy = 0.5;
  ASSERT_TRUE(cache.store(key, second));
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->test_accuracy, 0.5);
}

TEST_F(FsCacheBackendTest, FromEnvHonorsNnrCacheDir) {
  ::setenv("NNR_CACHE_DIR", dir_.string().c_str(), 1);
  EXPECT_TRUE(FsCacheBackend::from_env().enabled());
  EXPECT_EQ(FsCacheBackend::from_env().dir(), dir_.string());
  ::unsetenv("NNR_CACHE_DIR");
  EXPECT_FALSE(FsCacheBackend::from_env().enabled());
}

TEST_F(FsCacheBackendTest, FromEnvHonorsBudget) {
  ::setenv("NNR_CACHE_DIR", dir_.string().c_str(), 1);
  ::setenv("NNR_CACHE_BUDGET", "4096", 1);
  EXPECT_EQ(FsCacheBackend::from_env().budget(), 4096);
  ::setenv("NNR_CACHE_BUDGET", "4096x", 1);  // junk -> unlimited, not 4096
  EXPECT_EQ(FsCacheBackend::from_env().budget(), 0);
  ::unsetenv("NNR_CACHE_BUDGET");
  ::unsetenv("NNR_CACHE_DIR");
}

TEST_F(FsCacheBackendTest, FailedStoreCountsNothingAndLeavesNoTemp) {
  FsCacheBackend cache(dir_.string());
  const CellKey key{3, 4};
  // Occupy the entry's final path with a directory: the serialize step
  // succeeds but the atomic rename cannot, so the store must fail cleanly.
  fs::create_directories(cache.path_for(key));
  EXPECT_FALSE(cache.store(key, sample_result()));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.stores, 0);
  EXPECT_EQ(stats.bytes_written, 0) << "failed store must not pollute bytes";
  // The temp file was cleaned up.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
}

TEST_F(FsCacheBackendTest, BytesWrittenIsTheExactFileSize) {
  FsCacheBackend cache(dir_.string());
  const CellKey key{8, 8};
  ASSERT_TRUE(cache.store(key, sample_result()));
  EXPECT_EQ(static_cast<std::uintmax_t>(cache.stats().bytes_written),
            fs::file_size(cache.path_for(key)));
}

TEST_F(FsCacheBackendTest, PerRunStatsReceiveTheSameDeltas) {
  FsCacheBackend cache(dir_.string());
  CacheStats run;
  const CellKey key{21, 22};
  EXPECT_FALSE(cache.load(key, &run).has_value());
  EXPECT_EQ(run.misses, 1);
  ASSERT_TRUE(cache.store(key, sample_result(), &run));
  EXPECT_EQ(run.stores, 1);
  ASSERT_TRUE(cache.load(key, &run).has_value());
  EXPECT_EQ(run.hits, 1);
  EXPECT_EQ(run.bytes_read, run.bytes_written);
  // The run-local view matches the cache-lifetime view built from the same
  // operations.
  const CacheStats total = cache.stats();
  EXPECT_EQ(total.hits, run.hits);
  EXPECT_EQ(total.misses, run.misses);
  EXPECT_EQ(total.stores, run.stores);
}

TEST_F(FsCacheBackendTest, ClaimIsExclusivePerKey) {
  FsCacheBackend cache(dir_.string());
  const CellKey key{31, 32};
  auto claim = cache.try_claim(key);
  ASSERT_TRUE(claim.has_value());
  // Second claimant (another worker or, via a second cache object, another
  // process) must be refused while the first holds the key.
  FsCacheBackend peer(dir_.string());
  EXPECT_FALSE(peer.try_claim(key).has_value());
  EXPECT_TRUE(peer.try_claim(CellKey{31, 33}).has_value())
      << "claims are per-key, not cache-wide";
  claim.reset();
  EXPECT_TRUE(peer.try_claim(key).has_value());
}

TEST_F(FsCacheBackendTest, DisabledCacheRefusesClaims) {
  FsCacheBackend cache("");
  EXPECT_FALSE(cache.try_claim({1, 1}).has_value());
  EXPECT_FALSE(cache.claim({1, 1}).has_value());
}

class FsCacheBackendEvictionTest : public FsCacheBackendTest {
 protected:
  /// Bytes of one serialized sample_result entry (measured, not assumed).
  std::int64_t entry_bytes() {
    const fs::path probe_dir = dir_.string() + "_probe";
    fs::remove_all(probe_dir);
    FsCacheBackend probe(probe_dir.string());
    const CellKey key{0xFF, 0xFF};
    EXPECT_TRUE(probe.store(key, sample_result()));
    const auto size = fs::file_size(probe.path_for(key));
    fs::remove_all(probe_dir);
    return static_cast<std::int64_t>(size);
  }
};

TEST_F(FsCacheBackendEvictionTest, EvictsLeastRecentlyUsedDownToBudget) {
  const std::int64_t entry = entry_bytes();
  // Room for three entries, not four.
  FsCacheBackend cache(dir_.string(), 3 * entry + entry / 2);
  const CellKey a{1, 0}, b{2, 0}, c{3, 0}, d{4, 0};
  ASSERT_TRUE(cache.store(a, sample_result()));
  ASSERT_TRUE(cache.store(b, sample_result()));
  ASSERT_TRUE(cache.store(c, sample_result()));
  // Touch `a`: it is now more recently used than `b` and `c`.
  ASSERT_TRUE(cache.load(a).has_value());
  // The fourth store exceeds the budget; the LRU entry (`b`) must go.
  ASSERT_TRUE(cache.store(d, sample_result()));
  EXPECT_TRUE(fs::exists(cache.path_for(a)));
  EXPECT_FALSE(fs::exists(cache.path_for(b))) << "LRU entry must be evicted";
  EXPECT_TRUE(fs::exists(cache.path_for(c)));
  EXPECT_TRUE(fs::exists(cache.path_for(d)));
  // Evicted entries are ordinary misses afterwards — the validity contract
  // (miss -> recompute) is untouched.
  CacheStats run;
  EXPECT_FALSE(cache.load(b, &run).has_value());
  EXPECT_EQ(run.corrupt, 0);
}

TEST_F(FsCacheBackendEvictionTest, NeverEvictsAnInFlightKey) {
  const std::int64_t entry = entry_bytes();
  // Room for two entries.
  FsCacheBackend cache(dir_.string(), 2 * entry + entry / 2);
  const CellKey a{1, 1}, b{2, 2}, c{3, 3};
  ASSERT_TRUE(cache.store(a, sample_result()));
  ASSERT_TRUE(cache.store(b, sample_result()));
  // `a` is the LRU candidate but is in flight (claim held, as the
  // scheduler holds it around a double-check/recompute).
  auto claim = cache.try_claim(a);
  ASSERT_TRUE(claim.has_value());
  ASSERT_TRUE(cache.store(c, sample_result()));
  EXPECT_TRUE(fs::exists(cache.path_for(a)))
      << "in-flight key must never be evicted";
  EXPECT_FALSE(fs::exists(cache.path_for(b)))
      << "eviction falls through to the next LRU entry";
  EXPECT_TRUE(fs::exists(cache.path_for(c)));
}

TEST_F(FsCacheBackendEvictionTest, UnlimitedBudgetNeverEvicts) {
  FsCacheBackend cache(dir_.string());  // budget 0 = unlimited
  for (std::uint64_t i = 1; i <= 16; ++i) {
    ASSERT_TRUE(cache.store(CellKey{i, i}, sample_result()));
  }
  for (std::uint64_t i = 1; i <= 16; ++i) {
    EXPECT_TRUE(fs::exists(cache.path_for(CellKey{i, i})));
  }
}

TEST_F(FsCacheBackendTest, GcSweepsOrphanedTempAndStaleLockFiles) {
  FsCacheBackend cache(dir_.string());
  const CellKey keep{10, 20};
  ASSERT_TRUE(cache.store(keep, sample_result()));
  // Orphan: writer pid that cannot exist. Live: this process's own pid.
  const fs::path orphan = dir_ / "0123456789abcdef0123456789abcdef.rr.tmp99999999.1";
  const fs::path live =
      dir_ / ("fedcba9876543210fedcba9876543210.rr.tmp" +
              std::to_string(::getpid()) + ".7");
  std::ofstream(orphan).put('x');
  std::ofstream(live).put('x');
  // Stale lockfile (unheld) vs a held claim.
  std::ofstream(dir_ / "00000000000000000000000000000001.lock").put('\n');
  auto held = cache.try_claim({0, 2});
  ASSERT_TRUE(held.has_value());

  const GcStats gc = cache.gc();
  EXPECT_EQ(gc.removed_tmp, 1);
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_TRUE(fs::exists(live)) << "a live writer's temp file must survive";
  EXPECT_EQ(gc.removed_locks, 1);
  EXPECT_TRUE(fs::exists(cache.lock_path_for({0, 2})))
      << "a held claim must survive GC";
  EXPECT_EQ(gc.entries, 1);
  EXPECT_EQ(static_cast<std::uintmax_t>(gc.bytes),
            fs::file_size(cache.path_for(keep)));
  // The surviving entry still loads.
  EXPECT_TRUE(cache.load(keep).has_value());
}

TEST_F(FsCacheBackendTest, GcEvictsToBudgetAndCompactsTheJournal) {
  FsCacheBackend fill(dir_.string());
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(fill.store(CellKey{i, 0}, sample_result()));
  }
  const auto entry =
      static_cast<std::int64_t>(fs::file_size(fill.path_for(CellKey{1, 0})));
  FsCacheBackend bounded(dir_.string(), 2 * entry + entry / 2);
  const GcStats gc = bounded.gc();
  EXPECT_EQ(gc.evicted, 4);
  EXPECT_EQ(gc.entries, 2);
  EXPECT_LE(gc.bytes, bounded.budget());
  // LRU means the two newest stores survive.
  EXPECT_TRUE(fs::exists(bounded.path_for(CellKey{5, 0})));
  EXPECT_TRUE(fs::exists(bounded.path_for(CellKey{6, 0})));
  // Compacted journal: one line per surviving entry.
  std::ifstream journal(dir_ / "access.journal");
  std::string line;
  int lines = 0;
  while (std::getline(journal, line)) ++lines;
  EXPECT_EQ(lines, 2);
}

TEST_F(FsCacheBackendTest, GcOnDisabledOrMissingDirIsInert) {
  FsCacheBackend disabled("");
  const GcStats none = disabled.gc();
  EXPECT_EQ(none.entries, 0);
  FsCacheBackend missing((dir_ / "never_created").string());
  const GcStats empty = missing.gc();
  EXPECT_EQ(empty.entries, 0);
  EXPECT_FALSE(fs::exists(dir_ / "never_created"))
      << "gc must not create the cache dir";
}

}  // namespace
}  // namespace nnr::sched
