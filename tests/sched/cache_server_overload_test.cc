// Daemon self-protection: the connection cap (excess accepts answered with
// one kGoAway carrying kBusy + a retry hint, then closed), the idle
// deadline (a slow-loris client is evicted while a chatty one is not), the
// per-connection token bucket (over-rate requests answered kThrottled with
// the connection surviving — and a throttle-honoring client that never
// notices), and graceful shutdown (leases released, fleet queue persisted,
// a restarted daemon resumes the wave).
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/cache_protocol.h"
#include "net/frame.h"
#include "sched/cache_server.h"
#include "sched/fleet_queue.h"
#include "sched/remote_cache_backend.h"

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

RemoteCacheOptions fast_options() {
  RemoteCacheOptions options;
  options.lease_ttl_ms = 2000;
  options.io_timeout_ms = 2000;
  options.connect_timeout_ms = 500;
  options.reconnect_backoff_ms = 50;
  options.claim_poll_ms = 10;
  options.jitter_seed = 7;
  return options;
}

/// In-process daemon with an arbitrary overload config.
class OverloadServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_overload_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    stop();
    fs::remove_all(dir_);
  }

  void start(CacheServerConfig config) {
    config.dir = dir_.string();
    server_ = std::make_unique<CacheServer>(std::move(config));
    ASSERT_TRUE(server_->start());
    thread_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_ != nullptr) {
      server_->stop();
      thread_.join();
      server_.reset();
    }
  }

  std::unique_ptr<RemoteCacheBackend> client(
      RemoteCacheOptions options = fast_options()) {
    return std::make_unique<RemoteCacheBackend>(
        "tcp://127.0.0.1:" + std::to_string(server_->port()), options);
  }

  net::Socket raw_conn(int io_timeout_ms = 2000) {
    net::Socket sock =
        net::connect_tcp("127.0.0.1", server_->port(), 1000, io_timeout_ms);
    EXPECT_TRUE(sock.valid());
    return sock;
  }

  fs::path dir_;
  std::unique_ptr<CacheServer> server_;
  std::thread thread_;
};

std::vector<FleetWorkItem> grid(std::uint64_t count) {
  std::vector<FleetWorkItem> out;
  for (std::uint64_t n = 1; n <= count; ++n) {
    FleetWorkItem item;
    item.key = CellKey{0xF00D + n, n};
    item.study = "fig2";
    item.cell = static_cast<std::uint32_t>(n);
    item.replicate = 0;
    out.push_back(std::move(item));
  }
  return out;
}

TEST_F(OverloadServerTest, ConnectionCapAnswersGoAwayBusyThenCloses) {
  CacheServerConfig config;
  config.max_conns = 2;
  start(std::move(config));

  // Fill the cap. Raw conns register with the daemon at accept; a ping
  // round-trip proves each is fully in the epoll set.
  net::Socket first = raw_conn();
  net::Socket second = raw_conn();
  for (net::Socket* sock : {&first, &second}) {
    ASSERT_TRUE(net::send_frame(
        *sock, static_cast<std::uint8_t>(net::Op::kPing), ""));
    ASSERT_TRUE(net::recv_frame(*sock).has_value());
  }

  // The third is over capacity: exactly one kGoAway frame, then EOF.
  net::Socket excess = raw_conn();
  const auto frame = net::recv_frame(excess);
  ASSERT_TRUE(frame.has_value()) << "the refusal must be explicit, not "
                                    "a silent close the client misreads";
  EXPECT_EQ(frame->opcode, static_cast<std::uint8_t>(net::Op::kGoAway));
  net::BodyReader r(frame->body);
  EXPECT_EQ(static_cast<net::Status>(r.get<std::uint8_t>()),
            net::Status::kBusy);
  EXPECT_GT(r.get<std::uint32_t>(), 0u) << "retry hint must be usable";
  char byte = 0;
  EXPECT_EQ(excess.recv_exact(&byte, 1), net::IoStatus::kClosed);
  EXPECT_GE(server_->overload_counters().rejected_busy, 1);

  // Capacity is by live connections, not a lifetime count: close one and
  // the next accept succeeds.
  first.close();
  const auto deadline = Clock::now() + std::chrono::seconds(3);
  bool admitted = false;
  while (Clock::now() < deadline && !admitted) {
    net::Socket retry = raw_conn();
    if (net::send_frame(retry, static_cast<std::uint8_t>(net::Op::kPing),
                        "")) {
      const auto reply = net::recv_frame(retry);
      // A kGoAway here means the daemon hasn't noticed the close yet —
      // keep retrying; only an echoed ping proves admission.
      admitted = reply.has_value() &&
                 reply->opcode == static_cast<std::uint8_t>(net::Op::kPing);
    }
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(admitted) << "freed capacity must be reusable";
}

TEST_F(OverloadServerTest, SlowLorisIsEvictedWhileChattyClientsSurvive) {
  CacheServerConfig config;
  config.idle_timeout_ms = 200;
  start(std::move(config));

  // The loris: connects and never sends a byte. Nonblocking so the probe
  // below polls instead of stalling on its receive timeout.
  net::Socket loris = raw_conn(/*io_timeout_ms=*/3000);
  ASSERT_TRUE(loris.set_nonblocking());
  // The healthy client keeps talking well inside the idle window while
  // the loris ages out.
  auto healthy = client();
  const auto start_time = Clock::now();
  bool evicted = false;
  while (Clock::now() - start_time < std::chrono::seconds(3) && !evicted) {
    EXPECT_TRUE(healthy->ping()) << "an active client must never be evicted";
    char byte = 0;
    // A closed loris shows up as EOF on a nonblocking-ish probe; use the
    // socket's own receive with a short timeout slice via ping cadence.
    const auto n = loris.recv_avail(&byte, 1);
    if (n == 0 || n == -2) evicted = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(evicted) << "a silent connection must be evicted by the "
                          "idle deadline";
  EXPECT_GE(server_->overload_counters().idle_evicted, 1);
  EXPECT_TRUE(healthy->ping());
}

TEST_F(OverloadServerTest, OverRateClientIsThrottledWithARetryHint) {
  CacheServerConfig config;
  config.max_rps = 2.0;
  config.burst = 1.0;
  start(std::move(config));

  net::Socket greedy = raw_conn();
  // First request spends the single token...
  ASSERT_TRUE(
      net::send_frame(greedy, static_cast<std::uint8_t>(net::Op::kPing), ""));
  auto reply = net::recv_frame(greedy);
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->body.empty());
  EXPECT_EQ(static_cast<net::Status>(reply->body[0]), net::Status::kOk);

  // ...the immediate second is refused, connection intact, hint attached.
  ASSERT_TRUE(
      net::send_frame(greedy, static_cast<std::uint8_t>(net::Op::kPing), ""));
  reply = net::recv_frame(greedy);
  ASSERT_TRUE(reply.has_value()) << "throttling must answer, not drop";
  EXPECT_EQ(reply->opcode, static_cast<std::uint8_t>(net::Op::kPing))
      << "the refusal echoes the request opcode";
  net::BodyReader r(reply->body);
  EXPECT_EQ(static_cast<net::Status>(r.get<std::uint8_t>()),
            net::Status::kThrottled);
  const std::uint32_t hint_ms = r.get<std::uint32_t>();
  EXPECT_GT(hint_ms, 0u);
  EXPECT_LE(hint_ms, 60'000u);
  EXPECT_GE(server_->overload_counters().throttled, 1);

  // A different connection has its own bucket: the greedy client cannot
  // starve a neighbor.
  net::Socket neighbor = raw_conn();
  ASSERT_TRUE(net::send_frame(neighbor,
                              static_cast<std::uint8_t>(net::Op::kPing), ""));
  const auto ok = net::recv_frame(neighbor);
  ASSERT_TRUE(ok.has_value());
  ASSERT_FALSE(ok->body.empty());
  EXPECT_EQ(static_cast<net::Status>(ok->body[0]), net::Status::kOk);

  // And the greedy connection survives: after the hint, a token exists.
  std::this_thread::sleep_for(std::chrono::milliseconds(hint_ms + 100));
  ASSERT_TRUE(
      net::send_frame(greedy, static_cast<std::uint8_t>(net::Op::kPing), ""));
  reply = net::recv_frame(greedy);
  ASSERT_TRUE(reply.has_value()) << "the throttled connection must survive";
  ASSERT_FALSE(reply->body.empty());
  EXPECT_EQ(static_cast<net::Status>(reply->body[0]), net::Status::kOk);
}

TEST_F(OverloadServerTest, ThrottleHonoringBackendSucceedsTransparently) {
  CacheServerConfig config;
  config.max_rps = 10.0;
  config.burst = 1.0;
  start(std::move(config));

  RemoteCacheOptions options = fast_options();
  options.throttle_retries = 5;
  options.max_retry_after_ms = 500;
  auto backend = client(options);
  // Back-to-back operations overrun burst=1 constantly; the backend's
  // internal sleep-the-hint-and-resend loop must absorb every refusal.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(backend->ping()) << "op " << i;
  }
  EXPECT_GE(server_->overload_counters().throttled, 1)
      << "the test must actually have been throttled to prove anything";
}

TEST_F(OverloadServerTest, GracefulStopPersistsQueueAndRestartResumesWave) {
  CacheServerConfig config;
  config.drain_timeout_ms = 2000;
  start(std::move(config));
  const std::uint16_t port = server_->port();

  auto backend = client();
  ASSERT_TRUE(backend->fleet_submit(grid(3)).has_value());
  auto fetch = backend->fleet_fetch();  // one cell in flight at stop time
  ASSERT_TRUE(fetch.has_value());
  ASSERT_TRUE(fetch->granted);

  // stop() is the SIGTERM path: drain, release leases (the in-flight cell
  // requeues), persist the snapshot.
  stop();

  CacheServerConfig again;
  again.port = port;
  start(std::move(again));
  auto peer = client();
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  std::optional<FleetQueue::Stats> stat;
  while (Clock::now() < deadline) {
    stat = peer->fleet_queue_stat();
    if (stat.has_value()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->total, 3u);
  EXPECT_EQ(stat->pending, 3u)
      << "the leased cell must revert to pending across a graceful stop";
  EXPECT_EQ(stat->leased, 0u);
  const auto refetch = peer->fleet_fetch();
  ASSERT_TRUE(refetch.has_value());
  EXPECT_TRUE(refetch->granted) << "the restarted daemon must resume the wave";
}

}  // namespace
}  // namespace nnr::sched
