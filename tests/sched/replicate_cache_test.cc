// ReplicateCache: hit/miss accounting, atomic stores, and the failure
// policy — a corrupted, truncated, or foreign entry must degrade to a miss
// (recompute), never crash the study.
#include "sched/replicate_cache.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;

core::RunResult sample_result() {
  core::RunResult r;
  r.test_predictions = {0, 3, 1, 2};
  r.test_confidences = {0.25F, 0.5F, 0.125F, 1.0F};
  r.final_weights = {-1.5F, 0.0F, 2.25F};
  r.test_accuracy = 0.75;
  r.final_train_loss = 1.25;
  return r;
}

void expect_bitwise_equal(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.test_predictions, b.test_predictions);
  EXPECT_EQ(a.test_confidences, b.test_confidences);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
}

class ReplicateCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_cache_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ReplicateCacheTest, DisabledCacheIsInert) {
  ReplicateCache cache("");
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.load({1, 2}).has_value());
  EXPECT_FALSE(cache.store({1, 2}, sample_result()));
  EXPECT_EQ(cache.stats().misses, 0);
  EXPECT_EQ(cache.stats().stores, 0);
}

TEST_F(ReplicateCacheTest, MissOnEmptyCache) {
  ReplicateCache cache(dir_.string());
  EXPECT_FALSE(cache.load({1, 2}).has_value());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST_F(ReplicateCacheTest, StoreThenLoadRoundTripsBitwise) {
  ReplicateCache cache(dir_.string());
  const CellKey key{0xAB, 0xCD};
  ASSERT_TRUE(cache.store(key, sample_result()));
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_bitwise_equal(*loaded, sample_result());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.stores, 1);
  EXPECT_GT(stats.bytes_written, 0);
  EXPECT_EQ(stats.bytes_read, stats.bytes_written);
}

TEST_F(ReplicateCacheTest, DistinctKeysAreDistinctEntries) {
  ReplicateCache cache(dir_.string());
  ASSERT_TRUE(cache.store({1, 1}, sample_result()));
  EXPECT_FALSE(cache.load({1, 2}).has_value());
  EXPECT_TRUE(cache.load({1, 1}).has_value());
}

TEST_F(ReplicateCacheTest, CorruptedEntryFallsBackToMiss) {
  ReplicateCache cache(dir_.string());
  const CellKey key{7, 9};
  ASSERT_TRUE(cache.store(key, sample_result()));
  {
    // Flip one payload byte past the header.
    std::fstream f(cache.path_for(key),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);
    char c = 0;
    f.read(&c, 1);
    f.seekp(32);
    c = static_cast<char>(c ^ 0x5A);
    f.write(&c, 1);
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(ReplicateCacheTest, TruncatedEntryFallsBackToMiss) {
  ReplicateCache cache(dir_.string());
  const CellKey key{7, 10};
  ASSERT_TRUE(cache.store(key, sample_result()));
  fs::resize_file(cache.path_for(key), 20);
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
}

TEST_F(ReplicateCacheTest, ForeignEntryUnderWrongKeyIsRejected) {
  // A cache file renamed to another key's address must not be served: the
  // embedded key is verified on load.
  ReplicateCache cache(dir_.string());
  const CellKey key_a{100, 1};
  const CellKey key_b{100, 2};
  ASSERT_TRUE(cache.store(key_a, sample_result()));
  fs::copy_file(cache.path_for(key_a), cache.path_for(key_b));
  EXPECT_FALSE(cache.load(key_b).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1);
  EXPECT_TRUE(cache.load(key_a).has_value());
}

TEST_F(ReplicateCacheTest, StoreOverwritesInPlace) {
  ReplicateCache cache(dir_.string());
  const CellKey key{5, 5};
  core::RunResult first = sample_result();
  ASSERT_TRUE(cache.store(key, first));
  core::RunResult second = sample_result();
  second.test_accuracy = 0.5;
  ASSERT_TRUE(cache.store(key, second));
  const auto loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->test_accuracy, 0.5);
}

TEST_F(ReplicateCacheTest, FromEnvHonorsNnrCacheDir) {
  ::setenv("NNR_CACHE_DIR", dir_.string().c_str(), 1);
  EXPECT_TRUE(ReplicateCache::from_env().enabled());
  EXPECT_EQ(ReplicateCache::from_env().dir(), dir_.string());
  ::unsetenv("NNR_CACHE_DIR");
  EXPECT_FALSE(ReplicateCache::from_env().enabled());
}

}  // namespace
}  // namespace nnr::sched
