// Backend-conformance suite: the SAME fixture runs against FsCacheBackend
// (a temp directory), RemoteCacheBackend (an in-process CacheServer on an
// ephemeral loopback port), and ShardedCacheBackend (two and three
// in-process daemons, each with its own directory), so the CacheBackend
// contract — load/store/claim semantics, per-run stats deltas, and the
// corrupt-payload-degrades-to-recompute policy — cannot drift between the
// local, the remote, and the sharded implementation.
//
// Remote-only behavior gets its own fixture below: lease TTL expiry
// without heartbeats, heartbeat keepalive, release-on-disconnect (both the
// clean close and a genuine SIGKILLed child process), degrade-to-recompute
// when the daemon is down, reconnect after a daemon restart, and the
// daemon's PUT validation.
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/cache_protocol.h"
#include "net/frame.h"
#include "sched/cache_backend.h"
#include "sched/cache_server.h"
#include "sched/fs_cache_backend.h"
#include "sched/remote_cache_backend.h"
#include "sched/sharded_cache_backend.h"

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

core::RunResult sample_result() {
  core::RunResult r;
  r.test_predictions = {0, 3, 1, 2};
  r.test_confidences = {0.25F, 0.5F, 0.125F, 1.0F};
  r.final_weights = {-1.5F, 0.0F, 2.25F};
  r.test_accuracy = 0.75;
  r.final_train_loss = 1.25;
  return r;
}

void expect_bitwise_equal(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.test_predictions, b.test_predictions);
  EXPECT_EQ(a.test_confidences, b.test_confidences);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
}

RemoteCacheOptions fast_client_options() {
  RemoteCacheOptions options;
  options.lease_ttl_ms = 2000;
  options.io_timeout_ms = 2000;
  options.connect_timeout_ms = 500;
  options.reconnect_backoff_ms = 50;
  options.claim_poll_ms = 10;
  return options;
}

/// An in-process daemon on an ephemeral loopback port.
class ServerHandle {
 public:
  bool start(const std::string& dir, std::uint16_t port = 0,
             std::int64_t budget = 0, std::uint32_t max_ttl_ms = 0) {
    CacheServerConfig config;
    config.dir = dir;
    config.port = port;
    config.budget = budget;
    if (max_ttl_ms > 0) config.max_ttl_ms = max_ttl_ms;
    server_ = std::make_unique<CacheServer>(std::move(config));
    if (!server_->start()) return false;
    thread_ = std::thread([this] { server_->run(); });
    return true;
  }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

  void stop() {
    if (server_ != nullptr) {
      server_->stop();
      thread_.join();
      server_.reset();
    }
  }

  ~ServerHandle() { stop(); }

 private:
  std::unique_ptr<CacheServer> server_;
  std::thread thread_;
};

enum class BackendKind { kFs, kRemote, kSharded2, kSharded3 };

/// Number of shard daemons a parameter stands up (0 = not sharded).
int shards_for(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSharded2: return 2;
    case BackendKind::kSharded3: return 3;
    default: return 0;
  }
}

class CacheBackendConformance
    : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_conformance_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    if (GetParam() == BackendKind::kRemote) {
      ASSERT_TRUE(server_.start(dir_.string()));
    }
    for (int i = 0; i < shards_for(GetParam()); ++i) {
      auto shard = std::make_unique<ServerHandle>();
      ASSERT_TRUE(shard->start(shard_dir(i).string()));
      shard_servers_.push_back(std::move(shard));
    }
    backend_ = make_client();
    ASSERT_NE(backend_, nullptr);
  }

  void TearDown() override {
    backend_.reset();
    server_.stop();
    shard_servers_.clear();
    fs::remove_all(dir_);
  }

  [[nodiscard]] fs::path shard_dir(int index) const {
    return dir_ / ("shard" + std::to_string(index));
  }

  [[nodiscard]] std::vector<std::string> shard_urls() const {
    std::vector<std::string> urls;
    urls.reserve(shard_servers_.size());
    for (const auto& shard : shard_servers_) {
      urls.push_back("tcp://127.0.0.1:" + std::to_string(shard->port()));
    }
    return urls;
  }

  /// A backend instance, as one client/process would hold it. Call twice
  /// to model two independent clients of the same cache.
  std::unique_ptr<CacheBackend> make_client() {
    if (GetParam() == BackendKind::kFs) {
      return std::make_unique<FsCacheBackend>(dir_.string());
    }
    if (GetParam() == BackendKind::kRemote) {
      return std::make_unique<RemoteCacheBackend>(
          "tcp://127.0.0.1:" + std::to_string(server_.port()),
          fast_client_options());
    }
    ShardedCacheOptions options;
    options.remote = fast_client_options();
    options.jitter_seed = 0x5EED;  // pinned: reproducible probe schedule
    return std::make_unique<ShardedCacheBackend>(shard_urls(), options);
  }

  /// On-disk entry path (all backends ultimately share the directory
  /// format; for remote/sharded, the owning daemon holds the directory).
  /// Sharded resolves the key's owner shard first — the same rendezvous
  /// routing the backend uses — so byte-poking tests hit the right dir.
  std::string entry_path(const CellKey& key) {
    if (shard_servers_.empty()) {
      return FsCacheBackend(dir_.string()).path_for(key);
    }
    std::vector<std::uint64_t> tags;
    for (const std::string& url : shard_urls()) {
      tags.push_back(shard_tag(url));
    }
    const std::size_t owner = pick_shard(key, tags);
    return FsCacheBackend(shard_dir(static_cast<int>(owner)).string())
        .path_for(key);
  }

  fs::path dir_;
  ServerHandle server_;
  std::vector<std::unique_ptr<ServerHandle>> shard_servers_;
  std::unique_ptr<CacheBackend> backend_;
};

TEST_P(CacheBackendConformance, MissOnEmptyCache) {
  CacheStats run;
  EXPECT_FALSE(backend_->load({1, 2}, &run).has_value());
  EXPECT_EQ(run.misses, 1);
  EXPECT_EQ(run.hits, 0);
  EXPECT_EQ(backend_->stats().misses, 1);
}

TEST_P(CacheBackendConformance, StoreThenLoadRoundTripsBitwise) {
  const CellKey key{0xAB, 0xCD};
  ASSERT_TRUE(backend_->store(key, sample_result()));
  const auto loaded = backend_->load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_bitwise_equal(*loaded, sample_result());
  const CacheStats stats = backend_->stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.stores, 1);
  EXPECT_GT(stats.bytes_written, 0);
  EXPECT_EQ(stats.bytes_read, stats.bytes_written);
}

TEST_P(CacheBackendConformance, StoresAreVisibleToAPeerClient) {
  const CellKey key{7, 7};
  ASSERT_TRUE(backend_->store(key, sample_result()));
  auto peer = make_client();
  const auto loaded = peer->load(key);
  ASSERT_TRUE(loaded.has_value());
  expect_bitwise_equal(*loaded, sample_result());
}

TEST_P(CacheBackendConformance, PerRunStatsReceiveTheSameDeltas) {
  CacheStats run;
  const CellKey key{21, 22};
  EXPECT_FALSE(backend_->load(key, &run).has_value());
  EXPECT_EQ(run.misses, 1);
  ASSERT_TRUE(backend_->store(key, sample_result(), &run));
  EXPECT_EQ(run.stores, 1);
  ASSERT_TRUE(backend_->load(key, &run).has_value());
  EXPECT_EQ(run.hits, 1);
  EXPECT_EQ(run.bytes_read, run.bytes_written);
  const CacheStats total = backend_->stats();
  EXPECT_EQ(total.hits, run.hits);
  EXPECT_EQ(total.misses, run.misses);
  EXPECT_EQ(total.stores, run.stores);
}

TEST_P(CacheBackendConformance, CountMissFalseSuppressesMissCounting) {
  CacheStats run;
  EXPECT_FALSE(backend_->load({5, 6}, &run, /*count_miss=*/false).has_value());
  EXPECT_EQ(run.misses, 0);
  EXPECT_EQ(backend_->stats().misses, 0);
}

TEST_P(CacheBackendConformance, CorruptPayloadDegradesToRecompute) {
  const CellKey key{7, 9};
  ASSERT_TRUE(backend_->store(key, sample_result()));
  {
    // Flip one payload byte past the header, behind the backend's back.
    std::fstream f(entry_path(key),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(32);
    char c = 0;
    f.read(&c, 1);
    f.seekp(32);
    c = static_cast<char>(c ^ 0x5A);
    f.write(&c, 1);
  }
  CacheStats run;
  EXPECT_FALSE(backend_->load(key, &run).has_value())
      << "a corrupt entry must read as a miss";
  EXPECT_EQ(run.corrupt, 1);
  EXPECT_EQ(run.misses, 1);
  // "Recompute" = store a good entry again; it must then serve normally.
  ASSERT_TRUE(backend_->store(key, sample_result(), &run));
  const auto recovered = backend_->load(key, &run);
  ASSERT_TRUE(recovered.has_value());
  expect_bitwise_equal(*recovered, sample_result());
}

TEST_P(CacheBackendConformance, ForeignEntryUnderWrongKeyIsRejected) {
  const CellKey key_a{100, 1};
  const CellKey key_b{100, 2};
  ASSERT_TRUE(backend_->store(key_a, sample_result()));
  fs::copy_file(entry_path(key_a), entry_path(key_b));
  CacheStats run;
  EXPECT_FALSE(backend_->load(key_b, &run).has_value())
      << "the embedded key must be verified on load";
  EXPECT_EQ(run.corrupt, 1);
  EXPECT_TRUE(backend_->load(key_a, &run).has_value());
}

TEST_P(CacheBackendConformance, ClaimIsExclusiveAcrossClients) {
  const CellKey key{31, 32};
  auto claim = backend_->try_claim(key);
  ASSERT_TRUE(claim.has_value());
  EXPECT_TRUE(claim->held());
  auto peer = make_client();
  EXPECT_FALSE(peer->try_claim(key).has_value())
      << "a held key must refuse a second claimant";
  EXPECT_TRUE(peer->try_claim(CellKey{31, 33}).has_value())
      << "claims are per-key, not cache-wide";
  claim.reset();  // release
  // Remote release is an RPC; give it one poll interval of slack.
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  std::optional<CacheClaim> reclaimed;
  while (!reclaimed.has_value() && Clock::now() < deadline) {
    reclaimed = peer->try_claim(key);
    if (!reclaimed.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(reclaimed.has_value()) << "released key must be claimable";
}

TEST_P(CacheBackendConformance, BlockingClaimWaitsForRelease) {
  const CellKey key{41, 42};
  auto claim = backend_->try_claim(key);
  ASSERT_TRUE(claim.has_value());
  auto peer = make_client();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto blocked = peer->claim(key);
    acquired.store(blocked.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(acquired.load()) << "claim() must block while the key is held";
  claim.reset();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST_P(CacheBackendConformance, GcReportsRemainingEntries) {
  ASSERT_TRUE(backend_->store({1, 1}, sample_result()));
  ASSERT_TRUE(backend_->store({2, 2}, sample_result()));
  const GcStats gc = backend_->gc();
  EXPECT_EQ(gc.entries, 2);
  EXPECT_GT(gc.bytes, 0);
  EXPECT_EQ(gc.evicted, 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, CacheBackendConformance,
                         ::testing::Values(BackendKind::kFs,
                                           BackendKind::kRemote,
                                           BackendKind::kSharded2,
                                           BackendKind::kSharded3),
                         [](const auto& info) {
                           switch (info.param) {
                             case BackendKind::kFs: return "Fs";
                             case BackendKind::kRemote: return "Remote";
                             case BackendKind::kSharded2: return "Sharded2";
                             case BackendKind::kSharded3: return "Sharded3";
                           }
                           return "Unknown";
                         });

// ---------------------------------------------------------------------------
// Remote-only semantics: leases, heartbeats, death, degradation.
// ---------------------------------------------------------------------------

class RemoteCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_remote_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    server_.stop();
    fs::remove_all(dir_);
  }

  std::unique_ptr<RemoteCacheBackend> client(RemoteCacheOptions options) {
    return std::make_unique<RemoteCacheBackend>(
        "tcp://127.0.0.1:" + std::to_string(server_.port()), options);
  }

  fs::path dir_;
  ServerHandle server_;
};

TEST(RemoteUrlTest, ParseUrlAcceptsOnlyTcpHostPort) {
  std::string host;
  std::uint16_t port = 0;
  EXPECT_TRUE(RemoteCacheBackend::parse_url("tcp://localhost:9776", &host,
                                            &port));
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 9776);
  EXPECT_TRUE(RemoteCacheBackend::parse_url("tcp://10.0.0.7:80", &host,
                                            &port));
  EXPECT_FALSE(RemoteCacheBackend::parse_url("localhost:9776", &host, &port));
  EXPECT_FALSE(RemoteCacheBackend::parse_url("tcp://localhost", &host, &port));
  EXPECT_FALSE(RemoteCacheBackend::parse_url("tcp://:9776", &host, &port));
  EXPECT_FALSE(
      RemoteCacheBackend::parse_url("tcp://host:notaport", &host, &port));
  EXPECT_FALSE(RemoteCacheBackend::parse_url("tcp://host:0", &host, &port));
  EXPECT_THROW(RemoteCacheBackend("http://x:1"), std::invalid_argument);
}

TEST_F(RemoteCacheTest, LeaseExpiresWithoutHeartbeat) {
  ASSERT_TRUE(server_.start(dir_.string()));
  RemoteCacheOptions no_heartbeat = fast_client_options();
  no_heartbeat.heartbeat = false;
  no_heartbeat.lease_ttl_ms = 300;
  auto holder = client(no_heartbeat);
  auto peer = client(fast_client_options());

  const CellKey key{9, 9};
  auto claim = holder->try_claim(key);
  ASSERT_TRUE(claim.has_value());
  EXPECT_FALSE(peer->try_claim(key).has_value()) << "lease must be exclusive";

  // The holder's connection stays open but never heartbeats: the lease
  // must expire within its TTL and the key become claimable again.
  const auto start = Clock::now();
  std::optional<CacheClaim> reclaimed;
  while (!reclaimed.has_value() &&
         Clock::now() - start < std::chrono::seconds(5)) {
    reclaimed = peer->try_claim(key);
    if (!reclaimed.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_TRUE(reclaimed.has_value()) << "expired lease must free the key";
  EXPECT_LT(Clock::now() - start, std::chrono::milliseconds(2000));
  claim.reset();  // stale release: daemon answers kGone, harmlessly
}

TEST_F(RemoteCacheTest, HeartbeatKeepsLeaseAliveBeyondTtl) {
  ASSERT_TRUE(server_.start(dir_.string()));
  RemoteCacheOptions short_ttl = fast_client_options();
  short_ttl.lease_ttl_ms = 300;  // heartbeats every ~100ms
  auto holder = client(short_ttl);
  auto peer = client(fast_client_options());

  const CellKey key{10, 10};
  auto claim = holder->try_claim(key);
  ASSERT_TRUE(claim.has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  EXPECT_FALSE(peer->try_claim(key).has_value())
      << "a heartbeating client's lease must outlive several TTLs";
  claim.reset();
}

TEST_F(RemoteCacheTest, HeartbeatPacesAgainstTheGrantedTtlNotTheRequest) {
  // Server clamps every lease to 300ms; the client asks for 60s. If the
  // client paced heartbeats off its request (20s), the lease would expire
  // silently mid-claim — it must pace off the granted TTL instead.
  ASSERT_TRUE(server_.start(dir_.string(), /*port=*/0, /*budget=*/0,
                            /*max_ttl_ms=*/300));
  RemoteCacheOptions greedy = fast_client_options();
  greedy.lease_ttl_ms = 60'000;
  auto holder = client(greedy);
  auto peer = client(fast_client_options());

  const CellKey key{13, 13};
  auto claim = holder->try_claim(key);
  ASSERT_TRUE(claim.has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  EXPECT_FALSE(peer->try_claim(key).has_value())
      << "lease must survive several clamped TTLs under heartbeats";
  claim.reset();
}

TEST_F(RemoteCacheTest, DisconnectReleasesLeases) {
  ASSERT_TRUE(server_.start(dir_.string()));
  auto holder = client(fast_client_options());
  auto peer = client(fast_client_options());

  const CellKey key{11, 11};
  auto claim = holder->try_claim(key);
  ASSERT_TRUE(claim.has_value());
  EXPECT_FALSE(peer->try_claim(key).has_value());

  // Simulate a vanished client: the TCP connection drops with the lease
  // unreleased. The daemon must free it on the disconnect, long before
  // the TTL.
  holder->drop_connection_for_test();
  const auto start = Clock::now();
  std::optional<CacheClaim> reclaimed;
  while (!reclaimed.has_value() &&
         Clock::now() - start < std::chrono::seconds(5)) {
    reclaimed = peer->try_claim(key);
    if (!reclaimed.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(reclaimed.has_value())
      << "a dropped connection must release its leases";
  claim.reset();
}

TEST_F(RemoteCacheTest, SigkilledClientsClaimBecomesClaimable) {
  ASSERT_TRUE(server_.start(dir_.string()));
  const CellKey key{12, 12};

  // Pre-build everything the child needs so it runs on raw syscalls only
  // (fork() from a threaded test binary must not touch malloc or locks).
  net::BodyWriter body;
  body.put(key.hi);
  body.put(key.lo);
  body.put(std::uint32_t{30'000});  // long TTL: disconnect must free it,
                                    // not expiry
  const std::string frame = net::encode_frame(
      static_cast<std::uint8_t>(net::Op::kTryClaim), body.take());
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: claim the key over a raw socket (retrying while the parent's
    // own busy-probes transiently hold it), then hang until SIGKILL.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) ::_exit(1);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::_exit(2);
    }
    for (;;) {
      if (::write(fd, frame.data(), frame.size()) < 0) ::_exit(3);
      char resp[64];
      const ssize_t n = ::read(fd, resp, sizeof(resp));
      if (n <= 0) ::_exit(4);
      // Response payload: len(4) | magic(4) | ver | op | status; GRANTED=3.
      if (n >= 11 && resp[10] == 3) break;
      struct timespec delay{0, 20 * 1000 * 1000};
      ::nanosleep(&delay, nullptr);
    }
    for (;;) ::pause();
  }

  auto peer = client(fast_client_options());
  // Wait until the child's claim is visible (each probe that succeeds is
  // released immediately, giving the child its window).
  const auto start = Clock::now();
  bool busy_seen = false;
  while (!busy_seen && Clock::now() - start < std::chrono::seconds(10)) {
    auto probe = peer->try_claim(key);
    if (!probe.has_value()) {
      busy_seen = true;
    } else {
      probe.reset();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  // Kill the child unconditionally BEFORE asserting — a leaked child would
  // hold the test harness's output pipe open forever.
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  ASSERT_TRUE(busy_seen) << "child never established its claim";

  const auto kill_time = Clock::now();
  std::optional<CacheClaim> reclaimed;
  while (!reclaimed.has_value() &&
         Clock::now() - kill_time < std::chrono::seconds(5)) {
    reclaimed = peer->try_claim(key);
    if (!reclaimed.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(reclaimed.has_value())
      << "a SIGKILLed client's claim must become claimable again";
}

TEST_F(RemoteCacheTest, UnreachableDaemonDegradesToRecompute) {
  // Obtain a loopback port with nothing listening on it.
  std::uint16_t dead_port = 0;
  {
    net::Listener listener;
    ASSERT_TRUE(listener.listen_on("127.0.0.1", 0));
    dead_port = listener.port();
  }
  RemoteCacheOptions options = fast_client_options();
  RemoteCacheBackend backend("tcp://127.0.0.1:" + std::to_string(dead_port),
                             options);
  CacheStats run;
  EXPECT_FALSE(backend.load({1, 1}, &run).has_value());
  EXPECT_EQ(run.misses, 1);
  EXPECT_FALSE(backend.store({1, 1}, sample_result(), &run));
  EXPECT_EQ(run.stores, 0);
  auto claim = backend.try_claim({1, 1});
  ASSERT_TRUE(claim.has_value())
      << "degraded try_claim must grant a local no-op claim (train, don't "
         "defer forever)";
  auto blocking = backend.claim({2, 2});
  EXPECT_TRUE(blocking.has_value());
  const GcStats gc = backend.gc();
  EXPECT_EQ(gc.entries, 0);
  EXPECT_FALSE(backend.ping());
}

TEST_F(RemoteCacheTest, ReconnectsAfterDaemonRestart) {
  ASSERT_TRUE(server_.start(dir_.string()));
  const std::uint16_t port = server_.port();
  auto backend = client(fast_client_options());
  const CellKey key{3, 3};
  ASSERT_TRUE(backend->store(key, sample_result()));
  ASSERT_TRUE(backend->load(key).has_value());

  server_.stop();
  EXPECT_FALSE(backend->load(key).has_value())
      << "down daemon must degrade to a miss";

  // Same directory, same port: the restarted daemon still has the entry.
  ServerHandle restarted;
  ASSERT_TRUE(restarted.start(dir_.string(), port));
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  std::optional<core::RunResult> loaded;
  while (!loaded.has_value() && Clock::now() < deadline) {
    loaded = backend->load(key, nullptr, /*count_miss=*/false);
    if (!loaded.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ASSERT_TRUE(loaded.has_value()) << "client must reconnect to a restarted "
                                     "daemon";
  expect_bitwise_equal(*loaded, sample_result());
}

TEST_F(RemoteCacheTest, ReconnectAfterExplicitDisconnectIsImmediate) {
  // The sharded tier's probe path relies on disconnect() being a FULL
  // per-connection reset: after it, the next operation must attempt a
  // real connect immediately, not fail fast inside a backoff window armed
  // by earlier failures.
  ASSERT_TRUE(server_.start(dir_.string()));
  const std::uint16_t port = server_.port();
  RemoteCacheOptions options = fast_client_options();
  options.reconnect_backoff_ms = 60'000;  // any armed window outlives the test
  options.reconnect_backoff_max_ms = 120'000;
  auto backend = client(options);
  const CellKey key{4, 4};
  ASSERT_TRUE(backend->store(key, sample_result()));

  server_.stop();
  // First failure drops the connection; the second attempts a reconnect,
  // fails, and arms the 60s fail-fast window.
  EXPECT_FALSE(backend->load(key).has_value());
  EXPECT_FALSE(backend->load(key).has_value());

  ServerHandle restarted;
  ASSERT_TRUE(restarted.start(dir_.string(), port));
  EXPECT_FALSE(backend->load(key, nullptr, /*count_miss=*/false).has_value())
      << "inside the armed backoff window the client must fail fast, "
         "daemon or no daemon";

  backend->disconnect();
  const auto loaded = backend->load(key, nullptr, /*count_miss=*/false);
  ASSERT_TRUE(loaded.has_value())
      << "disconnect() must clear the backoff window so the very next "
         "operation reconnects";
  expect_bitwise_equal(*loaded, sample_result());
  EXPECT_TRUE(backend->connected());
}

TEST_F(RemoteCacheTest, ExplicitDisconnectReleasesLeases) {
  ASSERT_TRUE(server_.start(dir_.string()));
  auto holder = client(fast_client_options());
  auto peer = client(fast_client_options());

  const CellKey key{14, 14};
  auto claim = holder->try_claim(key);
  ASSERT_TRUE(claim.has_value());
  EXPECT_FALSE(peer->try_claim(key).has_value());

  // Explicit disconnect forgets the lease client-side (so the heartbeat
  // thread stops renewing it) and the daemon frees it on the TCP close.
  holder->disconnect();
  EXPECT_FALSE(holder->connected());
  const auto start = Clock::now();
  std::optional<CacheClaim> reclaimed;
  while (!reclaimed.has_value() &&
         Clock::now() - start < std::chrono::seconds(5)) {
    reclaimed = peer->try_claim(key);
    if (!reclaimed.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(reclaimed.has_value())
      << "an explicitly disconnected client's leases must be released";
  claim.reset();  // stale release after disconnect: harmless no-op
}

TEST_F(RemoteCacheTest, DaemonRejectsInvalidPutPayload) {
  ASSERT_TRUE(server_.start(dir_.string()));
  net::Socket sock =
      net::connect_tcp("127.0.0.1", server_.port(), 1000, 2000);
  ASSERT_TRUE(sock.valid());
  const CellKey key{77, 77};
  net::BodyWriter w;
  w.put(key.hi);
  w.put(key.lo);
  const std::string garbage = "definitely not a run result";
  w.put(static_cast<std::uint64_t>(garbage.size()));
  w.put_bytes(garbage);
  ASSERT_TRUE(net::send_frame(sock, static_cast<std::uint8_t>(net::Op::kPut),
                              w.take()));
  auto reply = net::recv_frame(sock);
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->body.empty());
  EXPECT_EQ(static_cast<net::Status>(reply->body[0]), net::Status::kError)
      << "the daemon must refuse a payload that fails validation";
  EXPECT_FALSE(fs::exists(FsCacheBackend(dir_.string()).path_for(key)))
      << "a refused PUT must not touch the cache dir";
}

TEST_F(RemoteCacheTest, RemoteGcSweepsOrphansInTheDaemonDir) {
  ASSERT_TRUE(server_.start(dir_.string()));
  auto backend = client(fast_client_options());
  ASSERT_TRUE(backend->store({5, 5}, sample_result()));
  const fs::path orphan =
      dir_ / "0123456789abcdef0123456789abcdef.rr.tmp99999999.1";
  std::ofstream(orphan).put('x');
  const GcStats gc = backend->gc();
  EXPECT_EQ(gc.removed_tmp, 1);
  EXPECT_EQ(gc.entries, 1);
  EXPECT_FALSE(fs::exists(orphan));
}

}  // namespace
}  // namespace nnr::sched
