// Chaos conformance: the full coordinator + 2-worker fleet drain and a
// mixed-ops backend workout, re-run under a matrix of seeded fault plans
// (drop / delay / corrupt / reset on every socket of client AND daemon).
// The invariants that must hold under ANY fault schedule:
//
//   - the study completes: every submitted cell ends done, none parked
//     as failed, the daemon's tally shows trained == cells exactly
//     (exactly-once: no double-trains, no losses),
//   - results are byte-identical to a fault-free run (faults cost
//     retries and time, never bytes),
//   - the daemon neither crashes nor wedges — it answers a clean ping
//     after the storm.
//
// Determinism makes failures here regression tests, not anecdotes: each
// plan is a spec string with a pinned seed, so a red run reproduces with
// the exact same fault sequence (see fault_injector_test.cc for the
// replay contract itself).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "net/fault_injector.h"
#include "sched/cache_server.h"
#include "sched/fleet_queue.h"
#include "sched/remote_cache_backend.h"

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

/// The fault-plan matrix. Probabilities are modest on purpose: the goal is
/// a storm the retry paths must absorb, not a partition nothing survives.
const char* const kFaultPlans[] = {
    "drop=0.05,seed=7",
    "delay_ms=3:0.10,corrupt=0.04,seed=11",
    "drop=0.03,delay_ms=2:0.05,corrupt=0.03,reset=0.02,seed=42",
};

constexpr std::uint64_t kCells = 12;

/// Deterministic synthetic "training" output for a cell: what a worker
/// stores is a pure function of the key, exactly like real training under
/// a fixed seed — so fault-free and chaotic runs must produce identical
/// bytes.
core::RunResult result_for(const CellKey& key) {
  core::RunResult r;
  const auto base = static_cast<std::int32_t>(key.lo % 97);
  r.test_predictions = {base, base + 1, base + 2};
  r.test_confidences = {0.25F + 0.01F * static_cast<float>(key.lo % 10),
                        0.5F, 0.75F};
  r.final_weights = {static_cast<float>(key.hi % 13) * 0.1F, -1.0F};
  r.test_accuracy = 0.25 + static_cast<double>(key.lo % 50) / 100.0;
  r.final_train_loss = 2.0 - static_cast<double>(key.lo % 10) / 10.0;
  return r;
}

void expect_identical(const core::RunResult& got, const core::RunResult& want,
                      const CellKey& key) {
  EXPECT_EQ(got.test_predictions, want.test_predictions) << key.hex();
  EXPECT_EQ(got.test_confidences, want.test_confidences) << key.hex();
  EXPECT_EQ(got.final_weights, want.final_weights) << key.hex();
  EXPECT_EQ(got.test_accuracy, want.test_accuracy) << key.hex();
  EXPECT_EQ(got.final_train_loss, want.final_train_loss) << key.hex();
}

std::vector<FleetWorkItem> grid() {
  std::vector<FleetWorkItem> out;
  for (std::uint64_t n = 1; n <= kCells; ++n) {
    FleetWorkItem item;
    item.key = CellKey{0xC0FFEE + n, n};
    item.study = "fig2";
    item.cell = static_cast<std::uint32_t>(n);
    item.replicate = 0;
    out.push_back(std::move(item));
  }
  return out;
}

/// Client options tuned for chaos: short timeouts so injected faults cost
/// tens of milliseconds, pinned jitter seeds so schedules replay.
RemoteCacheOptions chaos_options(std::uint64_t jitter_seed) {
  RemoteCacheOptions options;
  options.lease_ttl_ms = 3000;
  options.io_timeout_ms = 300;
  options.io_timeout_retries = 1;
  options.connect_timeout_ms = 500;
  options.reconnect_backoff_ms = 30;
  options.reconnect_backoff_max_ms = 200;
  options.jitter_seed = jitter_seed;
  options.claim_poll_ms = 10;
  return options;
}

class ChaosFleetTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string name = info->name();  // e.g. "FleetDrains.../plan0"
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = fs::temp_directory_path() / ("nnr_chaos_" + name);
    fs::remove_all(dir_);
    CacheServerConfig config;
    config.dir = dir_.string();
    server_ = std::make_unique<CacheServer>(std::move(config));
    ASSERT_TRUE(server_->start());
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->stop();
      thread_.join();
      server_.reset();
    }
    fs::remove_all(dir_);
  }

  std::unique_ptr<RemoteCacheBackend> client(std::uint64_t jitter_seed) {
    return std::make_unique<RemoteCacheBackend>(
        "tcp://127.0.0.1:" + std::to_string(server_->port()),
        chaos_options(jitter_seed));
  }

  fs::path dir_;
  std::unique_ptr<CacheServer> server_;
  std::thread thread_;
};

TEST_P(ChaosFleetTest, FleetDrainsExactlyOnceWithIdenticalBytes) {
  const auto spec = net::FaultSpec::parse(GetParam());
  ASSERT_TRUE(spec.has_value()) << GetParam();
  net::FaultInjector injector(*spec);

  const std::vector<FleetWorkItem> items = grid();
  std::atomic<bool> stop{false};
  const auto deadline = Clock::now() + std::chrono::seconds(90);
  {
    net::FaultInjector::ScopedInstall chaos(&injector);

    // Submit with retries: the submit RPC itself rides the faulty wire.
    auto coordinator = client(/*jitter_seed=*/101);
    bool submitted = false;
    for (int i = 0; i < 200 && !submitted; ++i) {
      submitted = coordinator->fleet_submit(items).has_value();
      if (!submitted) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    ASSERT_TRUE(submitted) << "submit must eventually get through";

    // Two workers, each with its own backend/connection/jitter stream.
    auto worker_loop = [&](std::uint64_t jitter_seed) {
      auto backend = client(jitter_seed);
      while (!stop.load(std::memory_order_relaxed) &&
             Clock::now() < deadline) {
        auto fetch = backend->fleet_fetch();
        if (!fetch.has_value()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(15));
          continue;
        }
        if (!fetch->granted) {
          if (fetch->total > 0 && fetch->outstanding == 0) break;  // drained
          std::this_thread::sleep_for(std::chrono::milliseconds(15));
          continue;
        }
        const CellKey key = fetch->item.key;
        if (backend->load(key).has_value()) {
          (void)backend->fleet_report(key, fetch->lease_id,
                                      net::ReportOutcome::kServed);
          continue;
        }
        const core::RunResult result = result_for(key);
        // Store until it sticks: the PUT is the proof of work (it settles
        // the queue item), so a worker never gives a cell up over a
        // transient fault. Mirrors fleet_run_worker's store-retry policy.
        // Retry on the wave deadline, not an attempt count — fail-fast
        // attempts inside a reconnect-backoff window burn no wire time,
        // so a count-bounded loop can exhaust itself in a couple of
        // seconds while the wave has half a minute left.
        bool stored = false;
        while (!stored && !stop.load(std::memory_order_relaxed) &&
               Clock::now() < deadline) {
          stored = backend->store(key, result);
          if (!stored) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        }
        if (!stored && stop.load(std::memory_order_relaxed)) {
          // The wave completed while we retried: a reset fault released
          // our lease mid-retry and the peer redid the cell (to identical
          // bytes, by determinism). Our copy is moot, not lost.
          continue;
        }
        EXPECT_TRUE(stored) << "a PUT must eventually get through";
        // The report may be lost — PUT already settled the item, so a
        // lost report costs nothing.
        (void)backend->fleet_report(key, fetch->lease_id,
                                    net::ReportOutcome::kTrained);
      }
    };
    std::thread w1(worker_loop, 201);
    std::thread w2(worker_loop, 202);

    // Coordinator-side wait: poll the tally until every cell is done.
    bool drained = false;
    while (!drained && Clock::now() < deadline) {
      const auto stat = coordinator->fleet_queue_stat();
      drained = stat.has_value() && stat->done == kCells;
      if (!drained) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    stop.store(true, std::memory_order_relaxed);
    w1.join();
    w2.join();
    EXPECT_TRUE(drained) << "the wave must complete under plan "
                         << GetParam();
  }  // chaos off — verification runs on a clean wire

  // Exactly-once tally: every cell trained once, none failed, none lost.
  auto verifier = client(/*jitter_seed=*/303);
  const auto stat = verifier->fleet_queue_stat();
  ASSERT_TRUE(stat.has_value()) << "daemon must be healthy after the storm";
  EXPECT_EQ(stat->total, kCells);
  EXPECT_EQ(stat->done, kCells);
  EXPECT_EQ(stat->trained, kCells)
      << "PUT settles each item exactly once: no double-trains, no losses";
  EXPECT_EQ(stat->failed, 0u);

  // Byte-identical results: what survived the chaotic wire must equal the
  // fault-free computation.
  for (const FleetWorkItem& item : items) {
    const auto loaded = verifier->load(item.key);
    ASSERT_TRUE(loaded.has_value()) << item.key.hex();
    expect_identical(*loaded, result_for(item.key), item.key);
  }
  EXPECT_TRUE(verifier->ping());
}

TEST_P(ChaosFleetTest, MixedOpsNeverCorruptWhatTheyAcknowledge) {
  // Backend-conformance under fire: a single client hammers store / load /
  // claim cycles while every socket misbehaves. The contract is weaker
  // than success — ops may fail — but asymmetric: an acknowledged store
  // must be durable and byte-exact, a load may miss but never lie, and a
  // granted claim is real (the daemon holds the lease).
  const auto spec = net::FaultSpec::parse(GetParam());
  ASSERT_TRUE(spec.has_value()) << GetParam();
  net::FaultInjector injector(*spec);

  std::vector<CellKey> acknowledged;
  {
    net::FaultInjector::ScopedInstall chaos(&injector);
    auto backend = client(/*jitter_seed=*/404);
    for (std::uint64_t i = 0; i < 60; ++i) {
      const CellKey key{0xABBA + i, i + 1};
      if (auto claim = backend->try_claim(key);
          claim.has_value() && claim->held()) {
        if (backend->store(key, result_for(key))) {
          acknowledged.push_back(key);
        }
      }
      // Loads during chaos may miss (degraded) — they must never throw or
      // return wrong bytes (checksums catch corrupted GET payloads).
      if (const auto loaded = backend->load(key); loaded.has_value()) {
        expect_identical(*loaded, result_for(key), key);
      }
    }
  }

  // Every acknowledged store must now be served intact.
  auto verifier = client(/*jitter_seed=*/505);
  EXPECT_TRUE(verifier->ping()) << "daemon must survive the mixed-ops storm";
  EXPECT_FALSE(acknowledged.empty())
      << "some stores must succeed under these fault rates, or the test "
         "proved nothing";
  for (const CellKey& key : acknowledged) {
    const auto loaded = verifier->load(key);
    ASSERT_TRUE(loaded.has_value())
        << key.hex() << ": an acknowledged store must be durable";
    expect_identical(*loaded, result_for(key), key);
  }
}

INSTANTIATE_TEST_SUITE_P(FaultPlans, ChaosFleetTest,
                         ::testing::ValuesIn(kFaultPlans),
                         [](const auto& info) {
                           return "plan" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace nnr::sched
