// ETA policy and progress-line dedupe. The regression behind format_eta:
// a warm-prefix study completes hundreds of cache-hit cells in seconds,
// and an ETA extrapolated from overall completions then forecasts near-
// zero time for a remainder that still has to train — the estimate must
// cost remaining work at the trained-cell rate whenever one exists.
#include "sched/progress.h"

#include <string>

#include <gtest/gtest.h>

namespace nnr::sched {
namespace {

TEST(FormatEtaTest, UnknownBeforeAnythingCompletes) {
  EXPECT_EQ(format_eta(5000, 0, 100, 0), "?");
}

TEST(FormatEtaTest, ZeroAtCompletion) {
  EXPECT_EQ(format_eta(5000, 100, 100, 40), "0s");
  EXPECT_EQ(format_eta(5000, 100, 100, 0), "0s") << "all-hit runs finish too";
}

TEST(FormatEtaTest, UsesTrainedThroughputWhenAnyCellTrained) {
  // 10s elapsed, 500/1000 done but only 2 trained: the 498 hits were free.
  // Overall rate would claim 10s for the rest; the trained rate knows each
  // trained cell costs ~5s, so 500 remaining cells cost ~2500s.
  EXPECT_EQ(format_eta(10'000, 500, 1000, 2), "2500.0s");
  // Sanity at the other extreme: everything done so far trained.
  EXPECT_EQ(format_eta(10'000, 500, 1000, 500), "10.0s");
}

TEST(FormatEtaTest, FallsBackToOverallRateWhenNothingTrainedYet) {
  // A fully warm rerun: 10 hits in 1s, 10 to go — the overall rate is the
  // only signal there is.
  EXPECT_EQ(format_eta(1000, 10, 20, 0), "1.0s");
}

TEST(ProgressPrinterTest, RateLimitsWithinTheInterval) {
  ProgressPrinter printer(1000);
  EXPECT_TRUE(printer.emit("line a", 0));
  EXPECT_FALSE(printer.emit("line b", 500)) << "inside the interval";
  EXPECT_TRUE(printer.emit("line b", 1500));
}

TEST(ProgressPrinterTest, ForceBypassesTheRateLimitOnly) {
  ProgressPrinter printer(1000);
  EXPECT_TRUE(printer.emit("line a", 0));
  EXPECT_TRUE(printer.emit("final line", 100, /*force=*/true));
}

TEST(ProgressPrinterTest, NeverEmitsIdenticalConsecutiveLines) {
  ProgressPrinter printer(0);  // no rate limit: isolate the dedupe
  EXPECT_TRUE(printer.emit("12/12 cells", 0));
  EXPECT_FALSE(printer.emit("12/12 cells", 2000));
  EXPECT_FALSE(printer.emit("12/12 cells", 4000, /*force=*/true))
      << "force bypasses the rate limit, never the dedupe";
  EXPECT_TRUE(printer.emit("13/13 cells", 4000));
  EXPECT_TRUE(printer.emit("12/12 cells", 6000))
      << "only *consecutive* duplicates are suppressed";
}

}  // namespace
}  // namespace nnr::sched
