// Fleet work queue at the wire level: SUBMIT/FETCH/REPORT/QUEUE_STAT
// against an in-process CacheServer — the drain signal on an empty queue,
// kGone for reports nobody leased, the malformation matrix for the three
// new opcodes (truncated bodies cost the connection, never the daemon;
// out-of-range enum values answer kError), lease-death requeue paths, the
// PUT-settles-the-item contract, and queue durability across a daemon
// restart.
#include <chrono>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/cache_protocol.h"
#include "net/frame.h"
#include "sched/cache_server.h"
#include "sched/fleet_queue.h"
#include "sched/remote_cache_backend.h"

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

core::RunResult sample_result() {
  core::RunResult r;
  r.test_predictions = {1, 2, 3};
  r.test_confidences = {0.5F, 0.25F, 1.0F};
  r.final_weights = {0.5F, -1.0F};
  r.test_accuracy = 0.5;
  r.final_train_loss = 2.0;
  return r;
}

RemoteCacheOptions fast_options() {
  RemoteCacheOptions options;
  options.lease_ttl_ms = 2000;
  options.io_timeout_ms = 2000;
  options.connect_timeout_ms = 500;
  options.reconnect_backoff_ms = 50;
  options.claim_poll_ms = 10;
  return options;
}

/// An in-process daemon on an ephemeral loopback port.
class ServerHandle {
 public:
  bool start(const std::string& dir, std::uint16_t port = 0) {
    CacheServerConfig config;
    config.dir = dir;
    config.port = port;
    return start(std::move(config));
  }

  /// Full-config start for the overload/chaos tests.
  bool start(CacheServerConfig config) {
    server_ = std::make_unique<CacheServer>(std::move(config));
    if (!server_->start()) return false;
    thread_ = std::thread([this] { server_->run(); });
    return true;
  }

  [[nodiscard]] CacheServer& server() { return *server_; }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

  void stop() {
    if (server_ != nullptr) {
      server_->stop();
      thread_.join();
      server_.reset();
    }
  }

  ~ServerHandle() { stop(); }

 private:
  std::unique_ptr<CacheServer> server_;
  std::thread thread_;
};

std::vector<FleetWorkItem> grid(std::uint64_t count) {
  std::vector<FleetWorkItem> out;
  for (std::uint64_t n = 1; n <= count; ++n) {
    FleetWorkItem item;
    item.key = CellKey{0xF00D + n, n};
    item.study = "fig2";
    item.cell = static_cast<std::uint32_t>(n);
    item.replicate = 0;
    out.push_back(std::move(item));
  }
  return out;
}

class FleetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_fleet_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(dir_);
    ASSERT_TRUE(server_.start(dir_.string()));
  }
  void TearDown() override {
    server_.stop();
    fs::remove_all(dir_);
  }

  std::unique_ptr<RemoteCacheBackend> client(
      RemoteCacheOptions options = fast_options()) {
    return std::make_unique<RemoteCacheBackend>(
        "tcp://127.0.0.1:" + std::to_string(server_.port()), options);
  }

  net::Socket raw_conn() {
    net::Socket sock = net::connect_tcp("127.0.0.1", server_.port(), 1000,
                                        /*io_timeout_ms=*/2000);
    EXPECT_TRUE(sock.valid());
    return sock;
  }

  fs::path dir_;
  ServerHandle server_;
};

TEST_F(FleetServerTest, FetchOnEmptyQueueReportsNothingOutstanding) {
  auto backend = client();
  const auto fetch = backend->fleet_fetch();
  ASSERT_TRUE(fetch.has_value());
  EXPECT_FALSE(fetch->granted);
  EXPECT_EQ(fetch->outstanding, 0u);
  EXPECT_EQ(fetch->total, 0u)
      << "total == 0 tells a worker to wait for a submit, not exit";
}

TEST_F(FleetServerTest, SubmitFetchReportRoundTrip) {
  auto backend = client();
  const auto ack = backend->fleet_submit(grid(2));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->enqueued, 2u);

  auto fetch = backend->fleet_fetch();
  ASSERT_TRUE(fetch.has_value());
  ASSERT_TRUE(fetch->granted);
  EXPECT_EQ(fetch->item.study, "fig2");
  EXPECT_EQ(fetch->item.key, grid(2)[0].key) << "FIFO: submit order";
  ASSERT_TRUE(fetch->claim.has_value());
  EXPECT_TRUE(fetch->claim->held());

  auto stat = backend->fleet_queue_stat();
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->leased, 1u);
  EXPECT_EQ(stat->pending, 1u);

  const auto report = backend->fleet_report(fetch->item.key, fetch->lease_id,
                                            net::ReportOutcome::kTrained);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->done, 1u);
  EXPECT_EQ(report->total, 2u);

  stat = backend->fleet_queue_stat();
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->trained, 1u);
  EXPECT_EQ(stat->leased, 0u);
}

TEST_F(FleetServerTest, SubmitShortCircuitsKeysAlreadyInTheCache) {
  auto backend = client();
  auto items = grid(3);
  ASSERT_TRUE(backend->store(items[1].key, sample_result()));
  const auto ack = backend->fleet_submit(items);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->enqueued, 2u);
  EXPECT_EQ(ack->already_done, 1u);
  const auto stat = backend->fleet_queue_stat();
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->served, 1u);
  EXPECT_EQ(stat->done, 1u);
}

TEST_F(FleetServerTest, ReportForUnclaimedCellAnswersGone) {
  net::Socket sock = raw_conn();
  net::BodyWriter w;
  w.put(std::uint64_t{0xDEAD});  // key.hi — nothing ever leased this
  w.put(std::uint64_t{0xBEEF});  // key.lo
  w.put(std::uint64_t{42});      // lease_id
  w.put(static_cast<std::uint8_t>(net::ReportOutcome::kTrained));
  ASSERT_TRUE(net::send_frame(
      sock, static_cast<std::uint8_t>(net::Op::kReport), w.take()));
  const auto reply = net::recv_frame(sock);
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->body.empty());
  EXPECT_EQ(static_cast<net::Status>(reply->body[0]), net::Status::kGone);
}

TEST_F(FleetServerTest, ReportWithInvalidOutcomeByteAnswersError) {
  net::Socket sock = raw_conn();
  net::BodyWriter w;
  w.put(std::uint64_t{1});
  w.put(std::uint64_t{2});
  w.put(std::uint64_t{3});
  w.put(std::uint8_t{7});  // not a ReportOutcome
  ASSERT_TRUE(net::send_frame(
      sock, static_cast<std::uint8_t>(net::Op::kReport), w.take()));
  const auto reply = net::recv_frame(sock);
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->body.empty());
  EXPECT_EQ(static_cast<net::Status>(reply->body[0]), net::Status::kError);
}

TEST_F(FleetServerTest, MalformedFleetBodiesCostTheConnectionNotTheDaemon) {
  struct Case {
    net::Op op;
    std::string body;
    const char* what;
  };
  net::BodyWriter lying_submit;
  lying_submit.put(std::uint32_t{5});  // promises 5 items, carries none
  net::BodyWriter truncated_report;
  truncated_report.put(std::uint64_t{1});  // key.hi only
  const Case cases[] = {
      {net::Op::kSubmit, lying_submit.take(), "SUBMIT count > items"},
      {net::Op::kSubmit, std::string("\x01", 1), "SUBMIT truncated count"},
      {net::Op::kFetch, "", "FETCH missing ttl"},
      {net::Op::kReport, truncated_report.take(), "REPORT truncated body"},
  };
  for (const Case& c : cases) {
    net::Socket sock = raw_conn();
    ASSERT_TRUE(
        net::send_frame(sock, static_cast<std::uint8_t>(c.op), c.body))
        << c.what;
    EXPECT_FALSE(net::recv_frame(sock).has_value())
        << c.what << ": a malformed body is a protocol violation — the "
        << "daemon must drop the connection, not answer";
    // The daemon itself must shrug it off: a fresh connection works.
    auto probe = client();
    EXPECT_TRUE(probe->ping()) << c.what << " must not kill the daemon";
  }
}

TEST_F(FleetServerTest, MalformedBodySweepDropsOffenderNotHealthyClients) {
  // Every opcode that requires a body, fed a 1-byte body: the daemon must
  // drop exactly the offending connection — and a healthy client working
  // concurrently must never notice.
  const net::Op body_ops[] = {
      net::Op::kGet,     net::Op::kPut,    net::Op::kTryClaim,
      net::Op::kRelease, net::Op::kHeartbeat, net::Op::kSubmit,
      net::Op::kFetch,   net::Op::kReport,
  };
  auto healthy = client();
  for (const net::Op op : body_ops) {
    net::Socket sock = raw_conn();
    ASSERT_TRUE(net::send_frame(sock, static_cast<std::uint8_t>(op),
                                std::string("\x01", 1)))
        << "op " << static_cast<int>(op);
    EXPECT_FALSE(net::recv_frame(sock).has_value())
        << "op " << static_cast<int>(op)
        << ": a truncated body must cost the connection, never get an answer";
    EXPECT_TRUE(healthy->ping())
        << "op " << static_cast<int>(op)
        << ": the healthy client must survive the offender";
  }
}

TEST_F(FleetServerTest, GarbageLengthPrefixesDropTheConnection) {
  // Below the frame layer: raw length prefixes the daemon must refuse to
  // allocate for. Oversized says "I will send 64MB+1" (a memory bomb);
  // tiny says "3 bytes" (can't even hold the magic). Either way: drop.
  struct Case {
    std::uint32_t len;
    const char* what;
  };
  const Case cases[] = {
      {net::kMaxFrameBytes + 1, "oversized length (allocation bomb)"},
      {3, "length below the minimum payload"},
      {0, "zero length"},
      {0xFFFF'FFFFu, "UINT32_MAX length"},
  };
  auto healthy = client();
  for (const Case& c : cases) {
    net::Socket sock = raw_conn();
    ASSERT_EQ(sock.send_all(&c.len, sizeof(c.len)), net::IoStatus::kOk)
        << c.what;
    // The daemon must close without ever answering…
    char byte = 0;
    EXPECT_EQ(sock.recv_exact(&byte, 1), net::IoStatus::kClosed) << c.what;
    // …and without reserving 4GB or dying.
    EXPECT_TRUE(healthy->ping()) << c.what << " must not kill the daemon";
  }
}

TEST_F(FleetServerTest, DroppedWorkerConnectionRequeuesItsCell) {
  auto backend = client();
  ASSERT_TRUE(backend->fleet_submit(grid(1)).has_value());
  auto fetch = backend->fleet_fetch();
  ASSERT_TRUE(fetch.has_value());
  ASSERT_TRUE(fetch->granted);
  // Defuse the claim's destructor-release (the connection is about to die
  // anyway, mirroring a SIGKILLed worker).
  backend->drop_connection_for_test();

  auto peer = client();
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  std::optional<FleetQueue::Stats> stat;
  while (Clock::now() < deadline) {
    stat = peer->fleet_queue_stat();
    if (stat.has_value() && stat->pending == 1 && stat->leased == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->pending, 1u)
      << "a dead worker's cell must return to the queue";
  const auto refetch = peer->fleet_fetch();
  ASSERT_TRUE(refetch.has_value());
  EXPECT_TRUE(refetch->granted);
  EXPECT_EQ(refetch->item.key, grid(1)[0].key);
}

TEST_F(FleetServerTest, LeaseExpiryWithoutHeartbeatRequeuesTheCell) {
  RemoteCacheOptions no_heartbeat = fast_options();
  no_heartbeat.heartbeat = false;
  no_heartbeat.lease_ttl_ms = 300;
  auto worker = client(no_heartbeat);
  ASSERT_TRUE(worker->fleet_submit(grid(1)).has_value());
  auto fetch = worker->fleet_fetch();
  ASSERT_TRUE(fetch.has_value());
  ASSERT_TRUE(fetch->granted);

  auto peer = client();
  const auto start = Clock::now();
  std::optional<RemoteCacheBackend::FleetFetchResult> refetch;
  while (Clock::now() - start < std::chrono::seconds(5)) {
    refetch = peer->fleet_fetch();
    if (refetch.has_value() && refetch->granted) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(refetch.has_value());
  ASSERT_TRUE(refetch->granted)
      << "an expired lease must hand the cell to the next worker";
  EXPECT_EQ(refetch->item.key, grid(1)[0].key);
}

TEST_F(FleetServerTest, PutSettlesTheItemEvenWithoutAReport) {
  auto backend = client();
  ASSERT_TRUE(backend->fleet_submit(grid(1)).has_value());
  auto fetch = backend->fleet_fetch();
  ASSERT_TRUE(fetch.has_value());
  ASSERT_TRUE(fetch->granted);
  // The worker PUTs its result... and then (imagine) is SIGKILLed before
  // REPORT. The store is the proof of work.
  ASSERT_TRUE(backend->store(fetch->item.key, sample_result()));
  auto stat = backend->fleet_queue_stat();
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->trained, 1u) << "PUT must settle the queued item";
  EXPECT_EQ(stat->done, 1u);
  // A late report is acknowledged without double counting.
  (void)backend->fleet_report(fetch->item.key, fetch->lease_id,
                              net::ReportOutcome::kTrained);
  stat = backend->fleet_queue_stat();
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->trained, 1u);
  // And the drain signal now fires for every worker.
  const auto drained = backend->fleet_fetch();
  ASSERT_TRUE(drained.has_value());
  EXPECT_FALSE(drained->granted);
  EXPECT_EQ(drained->outstanding, 0u);
  EXPECT_EQ(drained->total, 1u);
}

TEST_F(FleetServerTest, DaemonRestartPreservesThePendingQueue) {
  const std::uint16_t port = server_.port();
  auto backend = client();
  ASSERT_TRUE(backend->fleet_submit(grid(3)).has_value());
  auto fetch = backend->fleet_fetch();  // one leased at crash time
  ASSERT_TRUE(fetch.has_value());
  ASSERT_TRUE(fetch->granted);

  server_.stop();
  ServerHandle restarted;
  ASSERT_TRUE(restarted.start(dir_.string(), port));

  auto peer = std::make_unique<RemoteCacheBackend>(
      "tcp://127.0.0.1:" + std::to_string(port), fast_options());
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  std::optional<FleetQueue::Stats> stat;
  while (Clock::now() < deadline) {
    stat = peer->fleet_queue_stat();
    if (stat.has_value()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(stat.has_value()) << "restarted daemon must serve the queue";
  EXPECT_EQ(stat->total, 3u) << "the queue snapshot must survive a restart";
  EXPECT_EQ(stat->pending, 3u)
      << "the crashed daemon's lease reverts to pending";
  EXPECT_EQ(stat->leased, 0u);
  // And the work is actually fetchable again.
  const auto refetch = peer->fleet_fetch();
  ASSERT_TRUE(refetch.has_value());
  EXPECT_TRUE(refetch->granted);
}

TEST_F(FleetServerTest, SubmitDuringDrainIsRefusedWithBusyNotEnqueued) {
  // A SUBMIT that races the graceful shutdown must be REFUSED (kBusy +
  // retry hint), never half-enqueued into the queue snapshot being saved:
  // the coordinator retries against the restarted daemon, which then owns
  // the items end to end. Drive a dedicated server's run loop on this
  // thread so the submit bytes are already pending when the drain read
  // pass runs.
  server_.stop();  // the fixture's own daemon is not the one under test
  CacheServerConfig config;
  config.dir = dir_.string();
  config.port = 0;
  config.busy_retry_ms = 1234;
  CacheServer server(std::move(config));
  ASSERT_TRUE(server.start());

  net::Socket sock = net::connect_tcp("127.0.0.1", server.port(), 1000, 2000);
  ASSERT_TRUE(sock.valid());
  net::BodyWriter w;
  w.put(std::uint32_t{1});
  w.put(std::uint64_t{0xD1});  // key.hi
  w.put(std::uint64_t{0xD2});  // key.lo
  const std::string study = "fig2";
  w.put(static_cast<std::uint32_t>(study.size()));
  w.put_bytes(study);
  w.put(std::uint32_t{0});  // cell
  w.put(std::uint32_t{0});  // replicate
  ASSERT_TRUE(net::send_frame(
      sock, static_cast<std::uint8_t>(net::Op::kSubmit), w.take()));
  // Let the bytes reach the daemon's kernel buffer, then request the stop
  // BEFORE running the loop: run() meets the accept and the stop wakeup in
  // its first epoll batch, exits, and finds the pending SUBMIT only in
  // drain_and_shutdown's final read pass — with draining_ set.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  server.run();

  auto reply = net::recv_frame(sock);
  ASSERT_TRUE(reply.has_value()) << "the drain pass must answer, not drop";
  EXPECT_EQ(static_cast<net::Op>(reply->opcode), net::Op::kSubmit);
  net::BodyReader r(reply->body);
  EXPECT_EQ(static_cast<net::Status>(r.get<std::uint8_t>()),
            net::Status::kBusy);
  EXPECT_EQ(r.get<std::uint32_t>(), 1234u) << "retry hint = busy_retry_ms";

  // Nothing was enqueued: the queue snapshot a restarted daemon loads from
  // the same directory is empty.
  ASSERT_TRUE(server_.start(dir_.string()));
  auto backend = client();
  const auto stats = backend->fleet_queue_stat();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->total, 0u);
  EXPECT_EQ(stats->pending, 0u);
}

TEST_F(FleetServerTest, ReconnectBackoffCostsOneAttemptPerWindow) {
  // Regression: a failed reconnect used to stamp the backoff clock BEFORE
  // the connect attempt, so when the attempt itself outlasted the window
  // (connect_timeout > backoff) every operation retried the connect. A
  // down daemon must cost one attempt per window, not one per operation.
  const std::uint16_t dead_port = server_.port();
  server_.stop();
  RemoteCacheOptions options = fast_options();
  options.reconnect_backoff_ms = 60'000;  // one window spans the whole test
  auto backend = std::make_unique<RemoteCacheBackend>(
      "tcp://127.0.0.1:" + std::to_string(dead_port), options);
  for (int i = 0; i < 5; ++i) {
    (void)backend->fleet_queue_stat();
    (void)backend->load(CellKey{1, 1});
  }
  EXPECT_EQ(backend->connect_attempts_for_test(), 1)
      << "10 operations inside one backoff window must share one connect "
         "attempt";
}

TEST_F(FleetServerTest, ReconnectWindowsGrowExponentiallyWithBoundedAttempts) {
  // The down-daemon probe schedule: windows double (base, 2x, 4x, capped)
  // and each window costs exactly one attempt no matter how many
  // operations land inside it. Over ~1.2s with base=100 cap=800 the
  // attempt count is bounded by the schedule, not by the operation rate.
  const std::uint16_t dead_port = server_.port();
  server_.stop();
  RemoteCacheOptions options = fast_options();
  options.reconnect_backoff_ms = 100;
  options.reconnect_backoff_max_ms = 800;
  options.jitter_seed = 7;  // pinned: the schedule is reproducible
  auto backend = std::make_unique<RemoteCacheBackend>(
      "tcp://127.0.0.1:" + std::to_string(dead_port), options);
  const auto deadline = Clock::now() + std::chrono::milliseconds(1200);
  int operations = 0;
  while (Clock::now() < deadline) {
    (void)backend->fleet_queue_stat();
    ++operations;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Worst case with jitter 0.5x: windows 50, 100, 200, 400, 400... — at
  // most ~7 attempts fit in 1.2s; far fewer than the ~100 operations.
  EXPECT_GE(operations, 20);
  EXPECT_GE(backend->connect_attempts_for_test(), 2)
      << "growth must still probe more than once over 1.2s";
  EXPECT_LE(backend->connect_attempts_for_test(), 8)
      << "every operation must NOT retry the connect";
  // A pinned seed replays the exact same schedule.
  auto replay = std::make_unique<RemoteCacheBackend>(
      "tcp://127.0.0.1:" + std::to_string(dead_port), options);
  (void)replay->fleet_queue_stat();
  EXPECT_EQ(replay->connect_attempts_for_test(), 1);
}

}  // namespace
}  // namespace nnr::sched
