// CellKey: the content hash must be stable for identical cells and
// sensitive to every field that changes a replicate's training outcome —
// the property that makes it safe as a cache address.
#include "sched/cell_key.h"

#include <gtest/gtest.h>

#include "data/synth_images.h"
#include "nn/zoo.h"
#include "sched/study_plan.h"

namespace nnr::sched {
namespace {

core::Task tiny_task() {
  core::Task task;
  task.name = "tiny";
  task.dataset = data::synth_cifar10(32, 16);
  task.make_model = [] { return nn::small_cnn(10, true); };
  task.recipe = core::cifar_recipe(2);
  task.default_replicates = 2;
  return task;
}

/// Fresh single-cell plan; `mutate` tweaks the cell before keying.
template <typename Fn>
CellKey key_of(Fn&& mutate) {
  StudyPlan plan("key_test");
  const core::Task& task = plan.own_task(tiny_task());
  Cell& cell =
      plan.add_cell(task, core::NoiseVariant::kAlgoPlusImpl, hw::v100());
  mutate(cell);
  return cell_key(cell, cell.ids_for(0));
}

CellKey base_key() {
  return key_of([](Cell&) {});
}

TEST(CellKey, IdenticalCellsHashIdentically) {
  EXPECT_EQ(base_key(), base_key());
}

TEST(CellKey, HexIs32LowercaseChars) {
  const std::string hex = base_key().hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(CellKey, EpochsChangeTheKey) {
  EXPECT_NE(base_key(), key_of([](Cell& c) { c.job.recipe.epochs = 3; }));
}

TEST(CellKey, LearningRateBitsChangeTheKey) {
  EXPECT_NE(base_key(), key_of([](Cell& c) { c.job.recipe.base_lr *= 2; }));
}

TEST(CellKey, VariantChangesTheKey) {
  EXPECT_NE(base_key(), key_of([](Cell& c) {
              c.job.variant = core::NoiseVariant::kControl;
            }));
}

TEST(CellKey, TogglesOverrideChangesTheKey) {
  // Even toggles equivalent to the variant must re-key: the override path
  // is hashed structurally, not resolved.
  EXPECT_NE(base_key(), key_of([](Cell& c) {
              c.job.toggles_override =
                  core::toggles_for(core::NoiseVariant::kAlgoPlusImpl);
            }));
}

TEST(CellKey, DeviceChangesTheKey) {
  EXPECT_NE(base_key(), key_of([](Cell& c) { c.job.device = hw::p100(); }));
}

TEST(CellKey, ReplicateIndexChangesTheKey) {
  StudyPlan plan("key_test");
  const core::Task& task = plan.own_task(tiny_task());
  const Cell& cell =
      plan.add_cell(task, core::NoiseVariant::kAlgoPlusImpl, hw::v100());
  EXPECT_NE(cell_key(cell, cell.ids_for(0)), cell_key(cell, cell.ids_for(1)));
}

TEST(CellKey, FactorialIdsAreDistinctFromDiagonal) {
  StudyPlan plan("key_test");
  const core::Task& task = plan.own_task(tiny_task());
  const Cell& cell =
      plan.add_cell(task, core::NoiseVariant::kAlgoPlusImpl, hw::v100());
  EXPECT_NE(cell_key(cell, {0, 1}), cell_key(cell, {1, 0}));
  EXPECT_NE(cell_key(cell, {0, 1}), cell_key(cell, {0, 0}));
}

TEST(CellKey, TaskIdChangesTheKey) {
  EXPECT_NE(base_key(), key_of([](Cell& c) { c.task_id += "-v2"; }));
}

TEST(CellKey, OptimizerIdChangesTheKey) {
  EXPECT_NE(base_key(), key_of([](Cell& c) { c.optimizer_id = "adam"; }));
}

TEST(CellKey, BaseSeedChangesTheKey) {
  EXPECT_NE(base_key(), key_of([](Cell& c) { c.job.base_seed = 42; }));
}

TEST(CellKey, WarmStartWeightsChangeTheKey) {
  const CellKey warm_a =
      key_of([](Cell& c) { c.job.warm_start_weights = {{1.0F, 2.0F}}; });
  const CellKey warm_b =
      key_of([](Cell& c) { c.job.warm_start_weights = {{1.0F, 2.5F}}; });
  EXPECT_NE(base_key(), warm_a);
  EXPECT_NE(warm_a, warm_b);
}

TEST(Cacheable, DefaultCellIsCacheable) {
  StudyPlan plan("key_test");
  const core::Task& task = plan.own_task(tiny_task());
  EXPECT_TRUE(plan.add_cell(task, core::NoiseVariant::kAlgo, hw::v100())
                  .cacheable());
}

TEST(Cacheable, UnnamedOptimizerOverrideIsNot) {
  StudyPlan plan("key_test");
  const core::Task& task = plan.own_task(tiny_task());
  Cell& cell = plan.add_cell(task, core::NoiseVariant::kAlgo, hw::v100());
  cell.job.make_optimizer = [](std::vector<nn::Param*>) {
    return std::unique_ptr<opt::Optimizer>();
  };
  EXPECT_FALSE(cell.cacheable());
  cell.optimizer_id = "custom";
  EXPECT_TRUE(cell.cacheable());
}

TEST(Cacheable, UnnamedRunnerIsNot) {
  StudyPlan plan("key_test");
  const core::Task& task = plan.own_task(tiny_task());
  Cell& cell = plan.add_cell(task, core::NoiseVariant::kAlgo, hw::v100());
  cell.runner = [](const core::TrainJob&, core::ReplicateIds) {
    return core::RunResult{};
  };
  EXPECT_FALSE(cell.cacheable());
  cell.runner_id = "probe";
  EXPECT_TRUE(cell.cacheable());
}

}  // namespace
}  // namespace nnr::sched
