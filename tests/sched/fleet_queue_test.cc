// FleetQueue state machine in isolation: submit dedup, FIFO fetch, the
// leased -> pending requeue paths (lease death, kFailed up to kMaxAttempts),
// PUT-time completion (on_stored), wave reset, and snapshot durability —
// a reloaded queue must revert leased items to pending and keep done ones.
#include "sched/fleet_queue.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;

FleetWorkItem item(std::uint64_t n, const std::string& study = "fig2") {
  FleetWorkItem it;
  it.key = CellKey{n, n * 31};
  it.study = study;
  it.cell = static_cast<std::uint32_t>(n % 7);
  it.replicate = static_cast<std::uint32_t>(n % 3);
  return it;
}

std::vector<FleetWorkItem> items(std::uint64_t count) {
  std::vector<FleetWorkItem> out;
  for (std::uint64_t n = 1; n <= count; ++n) out.push_back(item(n));
  return out;
}

const auto kNoEntry = [](const CellKey&) { return false; };
const auto kAlwaysAvailable = [](const CellKey&) { return true; };

TEST(FleetQueueTest, SubmitFetchReportLifecycle) {
  FleetQueue q("");
  const auto stats = q.submit(items(3), kNoEntry);
  EXPECT_EQ(stats.enqueued, 3u);
  EXPECT_EQ(q.stats().pending, 3u);

  const auto fetched = q.fetch_next(kAlwaysAvailable);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->key, item(1).key) << "fetch order is submit order";
  EXPECT_EQ(fetched->study, "fig2");
  EXPECT_TRUE(q.is_leased(fetched->key));
  EXPECT_EQ(q.stats().leased, 1u);
  EXPECT_EQ(q.outstanding(), 3u);

  EXPECT_TRUE(q.report(fetched->key, FleetQueue::Outcome::kTrained));
  const auto after = q.stats();
  EXPECT_EQ(after.done, 1u);
  EXPECT_EQ(after.trained, 1u);
  EXPECT_EQ(q.outstanding(), 2u);
}

TEST(FleetQueueTest, SubmitDeduplicatesTrackedKeys) {
  FleetQueue q("");
  EXPECT_EQ(q.submit(items(3), kNoEntry).enqueued, 3u);
  const auto again = q.submit(items(3), kNoEntry);
  EXPECT_EQ(again.enqueued, 0u);
  EXPECT_EQ(again.duplicates, 3u);
  EXPECT_EQ(q.total(), 3u);
}

TEST(FleetQueueTest, AlreadyCachedKeysGoStraightToDoneServed) {
  FleetQueue q("");
  const CellKey cached_key = item(2).key;
  const auto stats =
      q.submit(items(3), [&](const CellKey& k) { return k == cached_key; });
  EXPECT_EQ(stats.enqueued, 2u);
  EXPECT_EQ(stats.already_done, 1u);
  const auto s = q.stats();
  EXPECT_EQ(s.done, 1u);
  EXPECT_EQ(s.served, 1u);
  EXPECT_EQ(s.pending, 2u);
}

TEST(FleetQueueTest, FetchSkipsUnavailableKeysWithoutLosingThem) {
  FleetQueue q("");
  q.submit(items(2), kNoEntry);
  const CellKey busy = item(1).key;
  const auto fetched =
      q.fetch_next([&](const CellKey& k) { return !(k == busy); });
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->key, item(2).key);
  // The skipped key is still pending and fetchable once available.
  const auto retry = q.fetch_next(kAlwaysAvailable);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->key, busy);
}

TEST(FleetQueueTest, EmptyOrExhaustedQueueFetchesNothing) {
  FleetQueue q("");
  EXPECT_FALSE(q.fetch_next(kAlwaysAvailable).has_value());
  q.submit(items(1), kNoEntry);
  ASSERT_TRUE(q.fetch_next(kAlwaysAvailable).has_value());
  EXPECT_FALSE(q.fetch_next(kAlwaysAvailable).has_value())
      << "a leased item must not be fetched twice";
}

TEST(FleetQueueTest, LeaseDeathRequeuesAsPending) {
  FleetQueue q("");
  q.submit(items(1), kNoEntry);
  const auto fetched = q.fetch_next(kAlwaysAvailable);
  ASSERT_TRUE(fetched.has_value());
  q.release_to_pending(fetched->key);
  EXPECT_EQ(q.stats().pending, 1u);
  EXPECT_FALSE(q.is_leased(fetched->key));
  const auto refetched = q.fetch_next(kAlwaysAvailable);
  ASSERT_TRUE(refetched.has_value());
  EXPECT_EQ(refetched->key, fetched->key);
}

TEST(FleetQueueTest, FailedReportRequeuesUpToMaxAttemptsThenParks) {
  FleetQueue q("");
  q.submit(items(1), kNoEntry);
  for (std::uint32_t attempt = 1; attempt < FleetQueue::kMaxAttempts;
       ++attempt) {
    const auto fetched = q.fetch_next(kAlwaysAvailable);
    ASSERT_TRUE(fetched.has_value()) << "attempt " << attempt;
    EXPECT_TRUE(q.report(fetched->key, FleetQueue::Outcome::kFailed));
    EXPECT_EQ(q.stats().pending, 1u) << "failure below the cap requeues";
  }
  const auto last = q.fetch_next(kAlwaysAvailable);
  ASSERT_TRUE(last.has_value());
  EXPECT_TRUE(q.report(last->key, FleetQueue::Outcome::kFailed));
  const auto s = q.stats();
  EXPECT_EQ(s.pending, 0u) << "kMaxAttempts failures park the item";
  EXPECT_EQ(s.done, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(q.outstanding(), 0u) << "a parked item must not wedge the drain";
}

TEST(FleetQueueTest, OnStoredSettlesTheItemEvenWithoutAReport) {
  FleetQueue q("");
  q.submit(items(1), kNoEntry);
  const auto fetched = q.fetch_next(kAlwaysAvailable);
  ASSERT_TRUE(fetched.has_value());
  // Worker PUT the entry, then was SIGKILLed before REPORT: the store is
  // the proof of work.
  q.on_stored(fetched->key);
  const auto s = q.stats();
  EXPECT_EQ(s.done, 1u);
  EXPECT_EQ(s.trained, 1u);
  // The lease dying afterwards must NOT requeue the settled item...
  q.release_to_pending(fetched->key);
  EXPECT_EQ(q.stats().pending, 0u);
  // ...and a late report just acknowledges it without changing the tally.
  EXPECT_TRUE(q.report(fetched->key, FleetQueue::Outcome::kTrained));
  EXPECT_EQ(q.stats().trained, 1u);
}

TEST(FleetQueueTest, ReportForUnknownKeyIsRejected) {
  FleetQueue q("");
  q.submit(items(1), kNoEntry);
  EXPECT_FALSE(q.report(CellKey{999, 999}, FleetQueue::Outcome::kTrained));
}

TEST(FleetQueueTest, SubmitOntoDrainedQueueStartsAFreshWave) {
  FleetQueue q("");
  q.submit(items(2), kNoEntry);
  for (int i = 0; i < 2; ++i) {
    const auto fetched = q.fetch_next(kAlwaysAvailable);
    ASSERT_TRUE(fetched.has_value());
    ASSERT_TRUE(q.report(fetched->key, FleetQueue::Outcome::kTrained));
  }
  ASSERT_EQ(q.outstanding(), 0u);
  // New wave: the old done items leave the tally so progress restarts 0/N
  // (the keys would dedupe-collide otherwise, freezing the fleet line).
  const auto stats = q.submit({item(10), item(11), item(12)}, kNoEntry);
  EXPECT_EQ(stats.enqueued, 3u);
  const auto s = q.stats();
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.done, 0u);
  EXPECT_EQ(s.trained, 0u);
}

TEST(FleetQueueTest, SnapshotRoundTripsAcrossRestart) {
  const fs::path dir =
      fs::temp_directory_path() / "nnr_fleet_queue_snapshot_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string snap = (dir / "fleet_queue.nnrq").string();

  {
    FleetQueue q(snap);
    q.load();
    q.submit(items(4), kNoEntry);
    const auto fetched = q.fetch_next(kAlwaysAvailable);  // -> leased
    ASSERT_TRUE(fetched.has_value());
    ASSERT_TRUE(q.report(item(2).key, FleetQueue::Outcome::kTrained));
    // q dies here with: 1 leased, 2 pending, 1 done(trained).
  }

  FleetQueue restored(snap);
  restored.load();
  const auto s = restored.stats();
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.pending, 3u) << "leased items revert to pending on restart "
                              "(a restart is a fleet-wide lease expiry)";
  EXPECT_EQ(s.leased, 0u);
  EXPECT_EQ(s.done, 1u);
  EXPECT_EQ(s.trained, 1u);
  // The restored items carry their full work coordinates.
  const auto fetched = restored.fetch_next(kAlwaysAvailable);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->study, "fig2");
  fs::remove_all(dir);
}

TEST(FleetQueueTest, CorruptSnapshotIsDiscardedNotFatal) {
  const fs::path dir =
      fs::temp_directory_path() / "nnr_fleet_queue_corrupt_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string snap = (dir / "fleet_queue.nnrq").string();
  {
    FleetQueue q(snap);
    q.submit(items(2), kNoEntry);
  }
  {  // Flip a byte in the middle of the snapshot.
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(12);
    f.put('\x7F');
  }
  FleetQueue restored(snap);
  restored.load();
  EXPECT_EQ(restored.total(), 0u)
      << "a corrupt snapshot degrades to an empty queue (resubmission), "
         "never a wedged daemon";
  fs::remove_all(dir);
}

TEST(FleetQueueTest, EmptyPathDisablesPersistence) {
  FleetQueue q("");
  q.submit(items(1), kNoEntry);  // must not try to write anywhere
  q.load();                      // and load must be a no-op
  EXPECT_EQ(q.total(), 1u);
}

}  // namespace
}  // namespace nnr::sched
