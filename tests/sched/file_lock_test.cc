// FileLock: exclusive across open file descriptions (which is what makes
// one primitive serialize both pool workers and separate processes), release
// on destruction, and safe lockfile removal (unlink-under-lock + inode
// verification on acquire).
#include "sched/file_lock.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

namespace nnr::sched {
namespace {

namespace fs = std::filesystem;

class FileLockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_lock_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "key.lock").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string path_;
};

TEST_F(FileLockTest, SecondAcquisitionConflictsUntilRelease) {
  auto first = FileLock::try_acquire(path_);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->held());
  // A second open file description must conflict even within one process —
  // this is the property the scheduler relies on for worker-level claims.
  EXPECT_FALSE(FileLock::try_acquire(path_).has_value());
  first.reset();  // destructor releases
  EXPECT_TRUE(FileLock::try_acquire(path_).has_value());
}

TEST_F(FileLockTest, BlockingAcquireWaitsForTheHolder) {
  auto holder = FileLock::try_acquire(path_);
  ASSERT_TRUE(holder.has_value());
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    auto lock = FileLock::acquire(path_);
    ASSERT_TRUE(lock.has_value());
    // The blocking acquire must not return before the holder released.
    EXPECT_TRUE(released.load());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  released.store(true);
  holder.reset();
  waiter.join();
}

TEST_F(FileLockTest, UnlinkAndReleaseRemovesTheFileAndAllowsReclaim) {
  auto lock = FileLock::try_acquire(path_);
  ASSERT_TRUE(lock.has_value());
  lock->unlink_and_release();
  EXPECT_FALSE(lock->held());
  EXPECT_FALSE(fs::exists(path_));
  // A later claimant re-creates the file and holds a live lock.
  auto next = FileLock::try_acquire(path_);
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(fs::exists(path_));
}

TEST_F(FileLockTest, AcquireSurvivesConcurrentUnlink) {
  // GC unlinking a lockfile must never leave a claimant holding a lock on
  // a dead inode: hammer acquire/unlink from two threads and require that
  // at every point exactly the verified-inode holder wins.
  std::atomic<bool> stop{false};
  std::atomic<int> acquisitions{0};
  std::thread gc([&] {
    while (!stop.load()) {
      if (auto lock = FileLock::try_acquire(path_)) {
        lock->unlink_and_release();
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    auto lock = FileLock::acquire(path_);
    ASSERT_TRUE(lock.has_value());
    // Verified acquisition: the locked inode is the one at the path.
    EXPECT_TRUE(fs::exists(path_));
    ++acquisitions;
  }
  stop.store(true);
  gc.join();
  EXPECT_EQ(acquisitions.load(), 200);
}

TEST_F(FileLockTest, MoveTransfersOwnership) {
  auto lock = FileLock::try_acquire(path_);
  ASSERT_TRUE(lock.has_value());
  FileLock moved = std::move(*lock);
  EXPECT_TRUE(moved.held());
  EXPECT_FALSE(lock->held());
  EXPECT_FALSE(FileLock::try_acquire(path_).has_value());
}

}  // namespace
}  // namespace nnr::sched
