// The named-study registry: every plan must materialize, carry unique cell
// ids, and keep its cells cacheable — the property that lets shared cells
// (fig1 and table2 overlap on V100) train once per cache.
#include "sched/registry.h"

#include <set>

#include <gtest/gtest.h>

#include "sched/cell_key.h"

namespace nnr::sched {
namespace {

TEST(StudyRegistry, FindStudyResolvesKnownIds) {
  ASSERT_NE(find_study("fig1"), nullptr);
  ASSERT_NE(find_study("table2"), nullptr);
  EXPECT_EQ(find_study("fig999"), nullptr);
  EXPECT_EQ(find_study(""), nullptr);
}

TEST(StudyRegistry, EveryPlanMaterializesWithUniqueCacheableCells) {
  for (const StudyDef& def : study_registry()) {
    SCOPED_TRACE(def.id);
    EXPECT_FALSE(def.description.empty());
    const StudyPlan plan = def.make_plan();
    EXPECT_EQ(plan.name(), def.id);
    ASSERT_FALSE(plan.cells().empty());
    std::set<std::string> ids;
    for (const Cell& cell : plan.cells()) {
      EXPECT_TRUE(ids.insert(cell.id).second) << "duplicate cell " << cell.id;
      EXPECT_GT(cell.replicates, 0);
      EXPECT_NE(cell.job.dataset, nullptr);
      EXPECT_TRUE(static_cast<bool>(cell.job.make_model));
      EXPECT_TRUE(cell.cacheable())
          << "registry cell " << cell.id << " is not cacheable";
    }
  }
}

TEST(StudyRegistry, SharedCellsHashToTheSameKey) {
  // fig1 and table2 both contain (SmallCNN, V100, ALGO+IMPL): the content
  // keys must collide on purpose so the cache trains the cell once.
  const StudyPlan fig1 = find_study("fig1")->make_plan();
  const StudyPlan table2 = find_study("table2")->make_plan();
  const auto find_cell = [](const StudyPlan& plan,
                            const std::string& id) -> const Cell* {
    for (const Cell& cell : plan.cells()) {
      if (cell.id == id) return &cell;
    }
    return nullptr;
  };
  const std::string id = "SmallCNN CIFAR-10 / V100 / ALGO+IMPL";
  const Cell* a = find_cell(fig1, id);
  const Cell* b = find_cell(table2, id);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(cell_key(*a, a->ids_for(0)), cell_key(*b, b->ids_for(0)));
  EXPECT_NE(cell_key(*a, a->ids_for(0)), cell_key(*a, a->ids_for(1)));
}

TEST(StudyRegistry, StudyIdsAreUnique) {
  std::set<std::string> ids;
  for (const StudyDef& def : study_registry()) {
    EXPECT_TRUE(ids.insert(def.id).second) << "duplicate study " << def.id;
  }
}

}  // namespace
}  // namespace nnr::sched
