#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/replicates.h"
#include "data/synth_images.h"
#include "nn/zoo.h"

namespace nnr::core {
namespace {

TrainJob small_job(const data::ClassificationDataset* dataset,
                   NoiseVariant variant) {
  TrainJob job;
  job.make_model = [] { return nn::small_cnn(10, /*with_batchnorm=*/true); };
  job.dataset = dataset;
  job.recipe = cifar_recipe(/*epochs=*/4);
  job.variant = variant;
  job.device = hw::v100();
  job.base_seed = 0xABCDull;
  return job;
}

class TrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ClassificationDataset(data::synth_cifar10(160, 80));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::ClassificationDataset* dataset_;
};

data::ClassificationDataset* TrainerTest::dataset_ = nullptr;

TEST_F(TrainerTest, ProducesPredictionsAndWeights) {
  const RunResult result =
      train_replicate(small_job(dataset_, NoiseVariant::kControl), 0);
  EXPECT_EQ(result.test_predictions.size(), 80u);
  EXPECT_FALSE(result.final_weights.empty());
  EXPECT_GE(result.test_accuracy, 0.0);
  EXPECT_LE(result.test_accuracy, 1.0);
}

TEST_F(TrainerTest, TrainingBeatsChance) {
  // Even 2 epochs on the easy synthetic set should beat the 10% prior.
  const RunResult result =
      train_replicate(small_job(dataset_, NoiseVariant::kControl), 0);
  EXPECT_GT(result.test_accuracy, 0.15);
}

TEST_F(TrainerTest, RunReplicatesSerialAndParallelAgree) {
  // Host threading is measurement infrastructure: results must be identical.
  const TrainJob job = small_job(dataset_, NoiseVariant::kAlgoPlusImpl);
  const auto serial = run_replicates(job, 2, /*threads=*/1);
  const auto parallel = run_replicates(job, 2, /*threads=*/2);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    EXPECT_EQ(serial[r].test_predictions, parallel[r].test_predictions);
    EXPECT_EQ(serial[r].final_weights, parallel[r].final_weights);
  }
}

TEST_F(TrainerTest, ConfidencesAlignWithPredictions) {
  const RunResult result =
      train_replicate(small_job(dataset_, NoiseVariant::kControl), 0);
  ASSERT_EQ(result.test_confidences.size(), result.test_predictions.size());
  // Max softmax probability over C classes lies in [1/C, 1].
  for (const float c : result.test_confidences) {
    EXPECT_GE(c, 1.0F / 10.0F - 1e-6F);
    EXPECT_LE(c, 1.0F + 1e-6F);
  }
}

TEST_F(TrainerTest, EvaluateFullPredictionsMatchEvaluate) {
  // evaluate() is evaluate_full() minus the confidences — same forward
  // pass, same predictions.
  TrainJob job = small_job(dataset_, NoiseVariant::kControl);
  nn::Model model = job.make_model();
  rng::Generator init(5);
  model.init_weights(init);
  hw::ExecutionContext hw_a(job.device, hw::DeterminismMode::kDeterministic,
                            rng::Generator(0));
  hw::ExecutionContext hw_b(job.device, hw::DeterminismMode::kDeterministic,
                            rng::Generator(0));
  const auto full = evaluate_full(model, dataset_->test, hw_a, 32);
  const auto preds = evaluate(model, dataset_->test, hw_b, 32);
  EXPECT_EQ(full.predictions, preds);
}

TEST_F(TrainerTest, EvaluateMatchesStoredPredictionsSize) {
  const TrainJob job = small_job(dataset_, NoiseVariant::kControl);
  const RunResult result = train_replicate(job, 0);
  EXPECT_EQ(static_cast<std::int64_t>(result.test_predictions.size()),
            dataset_->test.size());
}

TEST_F(TrainerTest, FixedIdentityOrderIsHonored) {
  // With identity order, the CONTROL variant must still be reproducible.
  TrainJob job = small_job(dataset_, NoiseVariant::kControl);
  job.fixed_identity_order = true;
  const RunResult a = train_replicate(job, 0);
  const RunResult b = train_replicate(job, 1);
  EXPECT_EQ(a.final_weights, b.final_weights);
}

}  // namespace
}  // namespace nnr::core
