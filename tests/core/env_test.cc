// Environment scale-knob resolution (env_int / quick_mode / resolve_scale).
// Tests mutate this process's environment; each test restores what it sets.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/env.h"

namespace nnr::core {
namespace {

/// Sets an env var for the duration of a scope, restoring the prior value.
class ScopedEnv {
 public:
  ScopedEnv(std::string name, const std::string& value)
      : name_(std::move(name)) {
    const char* old = std::getenv(name_.c_str());
    if (old != nullptr) previous_ = old;
    ::setenv(name_.c_str(), value.c_str(), /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (previous_.has_value()) {
      ::setenv(name_.c_str(), previous_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> previous_;
};

TEST(EnvInt, ReturnsFallbackWhenUnset) {
  ::unsetenv("NNR_TEST_UNSET_KNOB");
  EXPECT_EQ(env_int("NNR_TEST_UNSET_KNOB", 42), 42);
}

TEST(EnvInt, ParsesInteger) {
  ScopedEnv knob("NNR_TEST_KNOB", "17");
  EXPECT_EQ(env_int("NNR_TEST_KNOB", 0), 17);
}

TEST(EnvInt, NegativeValuesParse) {
  ScopedEnv knob("NNR_TEST_KNOB", "-3");
  EXPECT_EQ(env_int("NNR_TEST_KNOB", 0), -3);
}

TEST(EnvInt, GarbageFallsBack) {
  ScopedEnv knob("NNR_TEST_KNOB", "not-a-number");
  EXPECT_EQ(env_int("NNR_TEST_KNOB", 7), 7);
}

TEST(EnvInt, TrailingJunkFallsBack) {
  // "8x" is a typo, not an 8: truncating silently would run the experiment
  // at the wrong scale.
  ScopedEnv knob("NNR_TEST_KNOB", "8x");
  EXPECT_EQ(env_int("NNR_TEST_KNOB", 3), 3);
}

TEST(EnvInt, OverflowFallsBack) {
  ScopedEnv knob("NNR_TEST_KNOB", "99999999999999999999999");
  EXPECT_EQ(env_int("NNR_TEST_KNOB", 5), 5);
  ScopedEnv negative("NNR_TEST_KNOB", "-99999999999999999999999");
  EXPECT_EQ(env_int("NNR_TEST_KNOB", 5), 5);
}

TEST(EnvInt, SurroundingWhitespaceParses) {
  ScopedEnv knob("NNR_TEST_KNOB", " 12 ");
  EXPECT_EQ(env_int("NNR_TEST_KNOB", 0), 12);
}

TEST(EnvInt, EmptyStringFallsBack) {
  ScopedEnv knob("NNR_TEST_KNOB", "");
  EXPECT_EQ(env_int("NNR_TEST_KNOB", 9), 9);
}

TEST(QuickMode, OffByDefaultAndOnWhenSet) {
  ::unsetenv("NNR_QUICK");
  EXPECT_FALSE(quick_mode());
  ScopedEnv quick("NNR_QUICK", "1");
  EXPECT_TRUE(quick_mode());
}

TEST(QuickMode, ZeroMeansOff) {
  ScopedEnv quick("NNR_QUICK", "0");
  EXPECT_FALSE(quick_mode());
}

TEST(ResolveScale, DefaultsPassThroughWithoutEnv) {
  ::unsetenv("NNR_QUICK");
  ::unsetenv("NNR_REPLICATES");
  ::unsetenv("NNR_EPOCHS");
  ::unsetenv("NNR_TRAIN_N");
  ::unsetenv("NNR_TEST_N");
  const Scale scale = resolve_scale(10, 40, 512, 256);
  EXPECT_EQ(scale.replicates, 10);
  EXPECT_EQ(scale.epochs, 40);
  EXPECT_EQ(scale.train_n, 512);
  EXPECT_EQ(scale.test_n, 256);
}

TEST(ResolveScale, ExplicitKnobsOverrideDefaults) {
  ScopedEnv replicates("NNR_REPLICATES", "3");
  ScopedEnv epochs("NNR_EPOCHS", "5");
  const Scale scale = resolve_scale(10, 40, 512, 256);
  EXPECT_EQ(scale.replicates, 3);
  EXPECT_EQ(scale.epochs, 5);
  EXPECT_EQ(scale.train_n, 512);  // untouched knob keeps its default
}

TEST(ResolveScale, QuickModeShrinksDefaults) {
  ScopedEnv quick("NNR_QUICK", "1");
  ::unsetenv("NNR_REPLICATES");
  ::unsetenv("NNR_EPOCHS");
  ::unsetenv("NNR_TRAIN_N");
  ::unsetenv("NNR_TEST_N");
  const Scale scale = resolve_scale(10, 40, 512, 256);
  EXPECT_EQ(scale.replicates, 2);
  EXPECT_EQ(scale.epochs, 2);
  EXPECT_EQ(scale.train_n, 128);
  EXPECT_EQ(scale.test_n, 64);
}

TEST(ResolveScale, QuickModeKeepsAFloorOnDataSize) {
  ScopedEnv quick("NNR_QUICK", "1");
  ::unsetenv("NNR_TRAIN_N");
  ::unsetenv("NNR_TEST_N");
  const Scale scale = resolve_scale(2, 2, 100, 100);
  EXPECT_GE(scale.train_n, 64);
  EXPECT_GE(scale.test_n, 64);
}

TEST(ResolveScale, ExplicitKnobBeatsQuickShrink) {
  ScopedEnv quick("NNR_QUICK", "1");
  ScopedEnv train_n("NNR_TRAIN_N", "999");
  const Scale scale = resolve_scale(10, 40, 512, 256);
  EXPECT_EQ(scale.train_n, 999);
}

}  // namespace
}  // namespace nnr::core
