#include "core/study.h"

#include <gtest/gtest.h>

namespace nnr::core {
namespace {

RunResult make_result(std::vector<std::int32_t> preds,
                      std::vector<float> weights, double accuracy) {
  RunResult r;
  r.test_predictions = std::move(preds);
  r.final_weights = std::move(weights);
  r.test_accuracy = accuracy;
  return r;
}

TEST(Study, SummaryAggregatesAccuracy) {
  const std::vector<RunResult> results = {
      make_result({0, 1}, {1.0F, 0.0F}, 0.8),
      make_result({0, 1}, {1.0F, 0.0F}, 0.9),
  };
  const VariantSummary s = summarize(results);
  EXPECT_NEAR(s.accuracy.mean(), 0.85, 1e-12);
  EXPECT_NEAR(s.accuracy_pct(), 85.0, 1e-9);
  EXPECT_EQ(s.mean_churn, 0.0);  // identical predictions
  EXPECT_NEAR(s.mean_l2, 0.0, 1e-9);
}

TEST(Study, SummaryChurnOverPairs) {
  const std::vector<RunResult> results = {
      make_result({0, 0}, {1.0F, 0.0F}, 0.5),
      make_result({0, 1}, {0.0F, 1.0F}, 0.5),
  };
  const VariantSummary s = summarize(results);
  EXPECT_DOUBLE_EQ(s.mean_churn, 0.5);
  EXPECT_DOUBLE_EQ(s.churn_pct(), 50.0);
  EXPECT_GT(s.mean_l2, 1.0);  // orthogonal unit weight vectors
}

TEST(Study, PerClassVarianceAmplification) {
  data::LabeledImages test;
  test.num_classes = 2;
  test.labels = {0, 0, 1, 1};
  // Class 1 predictions flip between runs; class 0 stable -> class-1 stddev
  // exceeds overall stddev.
  const std::vector<RunResult> results = {
      make_result({0, 0, 1, 1}, {1.0F}, 1.0),
      make_result({0, 0, 0, 0}, {1.0F}, 0.5),
  };
  const PerClassVariance pcv = per_class_variance(results, test);
  ASSERT_EQ(pcv.per_class_stddev_pct.size(), 2u);
  EXPECT_EQ(pcv.per_class_stddev_pct[0], 0.0);
  EXPECT_GT(pcv.per_class_stddev_pct[1], pcv.overall_stddev_pct);
  EXPECT_GT(pcv.amplification(), 1.0);
  EXPECT_DOUBLE_EQ(pcv.max_per_class_stddev_pct(),
                   pcv.per_class_stddev_pct[1]);
}

TEST(Study, SubgroupStabilityMaskedStats) {
  const std::vector<std::uint8_t> labels = {1, 0, 1, 0};
  const std::vector<std::uint8_t> mask = {1, 1, 0, 0};
  const std::vector<RunResult> results = {
      make_result({1, 0, 0, 0}, {1.0F}, 1.0),   // perfect on masked subset
      make_result({0, 1, 0, 0}, {1.0F}, 0.25),  // fully wrong on masked
  };
  const SubgroupStability stats = subgroup_stability(results, labels, mask);
  EXPECT_EQ(stats.accuracy.count(), 2);
  EXPECT_NEAR(stats.accuracy.mean(), 0.5, 1e-12);
  EXPECT_GT(stats.accuracy.stddev(), 0.5);
}

}  // namespace
}  // namespace nnr::core
