#include "core/table.h"

#include <gtest/gtest.h>

namespace nnr::core {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.render("Title");
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable table({"a", "b"});
  table.add_row({"xxxxxx", "1"});
  const std::string out = table.render();
  // Header row must be padded to the widest cell plus separator.
  const std::size_t header_end = out.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_GE(header_end, std::string("xxxxxx  b").size());
}

TEST(TextTable, CsvOutput) {
  TextTable table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.render_csv(), "x,y\n1,2\n");
}

TEST(Format, Pct) {
  EXPECT_EQ(fmt_pct(93.336, 2), "93.34%");
  EXPECT_EQ(fmt_pct(0.5, 1), "0.5%");
}

TEST(Format, Float) {
  EXPECT_EQ(fmt_float(1.23456, 3), "1.235");
  EXPECT_EQ(fmt_float(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace nnr::core
