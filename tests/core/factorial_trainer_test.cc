// Factorial (algo seed x impl seed) trainer contract: the two replicate
// indices key independent channel bundles, the diagonal matches the legacy
// single-index overload, and pinned channels ignore their index.
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synth_images.h"
#include "nn/zoo.h"
#include "stats/anova.h"

namespace nnr::core {
namespace {

class FactorialTrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ClassificationDataset(data::synth_cifar10(160, 80));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static TrainJob job(NoiseVariant variant) {
    TrainJob j;
    j.make_model = [] { return nn::small_cnn(10, /*with_batchnorm=*/true); };
    j.dataset = dataset_;
    j.recipe = cifar_recipe(/*epochs=*/3);
    j.variant = variant;
    j.device = hw::v100();
    j.base_seed = 0xFAC70ull;
    return j;
  }

  static data::ClassificationDataset* dataset_;
};

data::ClassificationDataset* FactorialTrainerTest::dataset_ = nullptr;

TEST_F(FactorialTrainerTest, DiagonalMatchesSingleIndexOverload) {
  const TrainJob j = job(NoiseVariant::kAlgoPlusImpl);
  const RunResult single = train_replicate(j, 3);
  const RunResult grid = train_replicate(j, ReplicateIds{3, 3});
  EXPECT_EQ(single.final_weights, grid.final_weights);
  EXPECT_EQ(single.test_predictions, grid.test_predictions);
}

TEST_F(FactorialTrainerTest, CellsAreReproducible) {
  const TrainJob j = job(NoiseVariant::kAlgoPlusImpl);
  const RunResult a = train_replicate(j, ReplicateIds{1, 2});
  const RunResult b = train_replicate(j, ReplicateIds{1, 2});
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST_F(FactorialTrainerTest, AlgoIndexIgnoredWhenAlgoPinned) {
  // IMPL variant pins the algo bundle: varying ids.algo must not matter.
  const TrainJob j = job(NoiseVariant::kImpl);
  const RunResult a = train_replicate(j, ReplicateIds{0, 5});
  const RunResult b = train_replicate(j, ReplicateIds{9, 5});
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST_F(FactorialTrainerTest, ImplIndexIgnoredWhenSchedulerPinned) {
  // ALGO variant runs deterministic kernels: varying ids.impl must not
  // matter.
  const TrainJob j = job(NoiseVariant::kAlgo);
  const RunResult a = train_replicate(j, ReplicateIds{4, 0});
  const RunResult b = train_replicate(j, ReplicateIds{4, 7});
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST_F(FactorialTrainerTest, BothIndicesMatterUnderFullNoise) {
  const TrainJob j = job(NoiseVariant::kAlgoPlusImpl);
  const RunResult base = train_replicate(j, ReplicateIds{0, 0});
  const RunResult other_algo = train_replicate(j, ReplicateIds{1, 0});
  const RunResult other_impl = train_replicate(j, ReplicateIds{0, 1});
  EXPECT_NE(base.final_weights, other_algo.final_weights);
  EXPECT_NE(base.final_weights, other_impl.final_weights);
}

TEST_F(FactorialTrainerTest, GridFeedsAnovaWithFullPartition) {
  // A 2x2 grid end to end: the ANOVA shares must partition (guards the
  // bench wiring, not statistical conclusions — those need larger grids).
  const TrainJob j = job(NoiseVariant::kAlgoPlusImpl);
  std::vector<std::vector<double>> acc(2, std::vector<double>(2, 0.0));
  for (std::uint64_t a = 0; a < 2; ++a) {
    for (std::uint64_t i = 0; i < 2; ++i) {
      acc[a][i] = train_replicate(j, ReplicateIds{a, i}).test_accuracy;
    }
  }
  const stats::TwoWayAnova anova = stats::two_way_anova(acc);
  EXPECT_NEAR(anova.rows_share() + anova.cols_share() +
                  anova.residual_share(),
              anova.ss_total > 0.0 ? 1.0 : 0.0, 1e-9);
}

}  // namespace
}  // namespace nnr::core
