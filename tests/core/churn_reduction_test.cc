// Churn mitigation: ensemble voting semantics, warm-start contract, and the
// headline property — both techniques reduce churn relative to independent
// cold-started single models.
#include "core/churn_reduction.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/replicates.h"
#include "data/synth_images.h"
#include "metrics/stability.h"
#include "nn/zoo.h"

namespace nnr::core {
namespace {

using Preds = std::vector<std::int32_t>;

TEST(EnsembleVote, SingleModelIsIdentity) {
  const std::vector<Preds> preds = {{0, 2, 1, 2}};
  EXPECT_EQ(ensemble_vote(preds, 3), (Preds{0, 2, 1, 2}));
}

TEST(EnsembleVote, MajorityWins) {
  const std::vector<Preds> preds = {{0, 1}, {0, 2}, {1, 2}};
  EXPECT_EQ(ensemble_vote(preds, 3), (Preds{0, 2}));
}

TEST(EnsembleVote, TieBreaksToSmallestClass) {
  const std::vector<Preds> preds = {{2}, {1}};
  EXPECT_EQ(ensemble_vote(preds, 3), (Preds{1}));
}

TEST(EnsembleVote, UnanimousModelsPassThrough) {
  const std::vector<Preds> preds = {{3, 0, 3}, {3, 0, 3}, {3, 0, 3}};
  EXPECT_EQ(ensemble_vote(preds, 4), (Preds{3, 0, 3}));
}

TEST(EnsembleVote, DeterministicAcrossCalls) {
  const std::vector<Preds> preds = {{0, 1, 2}, {1, 1, 0}, {2, 1, 0},
                                    {0, 0, 0}};
  EXPECT_EQ(ensemble_vote(preds, 3), ensemble_vote(preds, 3));
}

class ChurnReductionTrainingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ClassificationDataset(data::synth_cifar10(200, 100));
    TrainJob job = base_job();
    // Ten cold-started ALGO+IMPL replicates shared by the tests below.
    results_ = new std::vector<RunResult>(run_replicates(job, 10, 0));
  }
  static void TearDownTestSuite() {
    delete results_;
    delete dataset_;
    results_ = nullptr;
    dataset_ = nullptr;
  }

  static TrainJob base_job() {
    TrainJob job;
    job.make_model = [] { return nn::small_cnn(10, /*with_batchnorm=*/true); };
    job.dataset = dataset_;
    job.recipe = cifar_recipe(/*epochs=*/6);
    job.variant = NoiseVariant::kAlgoPlusImpl;
    job.device = hw::v100();
    job.base_seed = 0xC0FFEEull;
    return job;
  }

  static double mean_single_churn() {
    metrics::RunningStat churn;
    for (std::size_t i = 0; i < results_->size(); ++i) {
      for (std::size_t j = i + 1; j < results_->size(); ++j) {
        churn.add(metrics::churn((*results_)[i].test_predictions,
                                 (*results_)[j].test_predictions));
      }
    }
    return churn.mean();
  }

  static data::ClassificationDataset* dataset_;
  static std::vector<RunResult>* results_;
};

data::ClassificationDataset* ChurnReductionTrainingTest::dataset_ = nullptr;
std::vector<RunResult>* ChurnReductionTrainingTest::results_ = nullptr;

TEST_F(ChurnReductionTrainingTest, EnsembleChurnBelowSingleModelChurn) {
  const double single = mean_single_churn();
  const double k5 = ensemble_pair_churn(*results_, 5, 10);
  EXPECT_LT(k5, single)
      << "5-ensembles must disagree less than independent single models";
}

TEST_F(ChurnReductionTrainingTest, LargerEnsembleNoWorse) {
  // K=5 should be at most marginally worse than K=2 (both beat K=1 clearly;
  // allow small-sample slack between ensemble sizes).
  const double k2 = ensemble_pair_churn(*results_, 2, 10);
  const double k5 = ensemble_pair_churn(*results_, 5, 10);
  EXPECT_LE(k5, k2 + 0.05);
}

TEST_F(ChurnReductionTrainingTest, WarmStartReducesChurnToParent) {
  // Successor trained from parent weights must agree with the parent more
  // than two independently trained models agree with each other.
  const RunResult& parent = (*results_)[0];
  TrainJob warm_job = base_job();
  warm_job.recipe.epochs = 2;  // the "iterate" step is short
  const RunResult successor =
      train_warm_replicate(warm_job, /*replicate=*/99, parent.final_weights);
  const double warm_churn =
      metrics::churn(parent.test_predictions, successor.test_predictions);
  EXPECT_LT(warm_churn, mean_single_churn());
}

TEST_F(ChurnReductionTrainingTest, WarmStartBypassesInitChannel) {
  // Two warm starts from the same parent under CONTROL (all channels
  // pinned, deterministic kernels) must be bitwise identical regardless of
  // replicate index — the init channel is not consumed.
  TrainJob job = base_job();
  job.variant = NoiseVariant::kControl;
  job.recipe.epochs = 1;
  const std::vector<float>& parent = (*results_)[0].final_weights;
  const RunResult a = train_warm_replicate(job, 0, parent);
  const RunResult b = train_warm_replicate(job, 7, parent);
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST_F(ChurnReductionTrainingTest, ZeroEpochWarmStartKeepsWeights) {
  TrainJob job = base_job();
  job.variant = NoiseVariant::kControl;
  job.recipe.epochs = 0;
  const std::vector<float>& parent = (*results_)[0].final_weights;
  const RunResult out = train_warm_replicate(job, 0, parent);
  EXPECT_EQ(out.final_weights, parent);
}

}  // namespace
}  // namespace nnr::core
