#include "core/noise_variant.h"

#include <gtest/gtest.h>

namespace nnr::core {
namespace {

TEST(NoiseVariant, AlgoPlusImplVariesEverything) {
  const ChannelToggles t = toggles_for(NoiseVariant::kAlgoPlusImpl);
  EXPECT_TRUE(t.init_varies);
  EXPECT_TRUE(t.shuffle_varies);
  EXPECT_TRUE(t.augment_varies);
  EXPECT_TRUE(t.dropout_varies);
  EXPECT_TRUE(t.scheduler_varies);
  EXPECT_EQ(t.mode, hw::DeterminismMode::kDefault);
}

TEST(NoiseVariant, AlgoControlsTooling) {
  const ChannelToggles t = toggles_for(NoiseVariant::kAlgo);
  EXPECT_TRUE(t.init_varies);
  EXPECT_FALSE(t.scheduler_varies);
  EXPECT_EQ(t.mode, hw::DeterminismMode::kDeterministic);
}

TEST(NoiseVariant, ImplPinsAlgorithmicSeeds) {
  const ChannelToggles t = toggles_for(NoiseVariant::kImpl);
  EXPECT_FALSE(t.init_varies);
  EXPECT_FALSE(t.shuffle_varies);
  EXPECT_FALSE(t.augment_varies);
  EXPECT_FALSE(t.dropout_varies);
  EXPECT_TRUE(t.scheduler_varies);
  EXPECT_EQ(t.mode, hw::DeterminismMode::kDefault);
}

TEST(NoiseVariant, ControlPinsEverything) {
  const ChannelToggles t = toggles_for(NoiseVariant::kControl);
  EXPECT_FALSE(t.init_varies);
  EXPECT_FALSE(t.scheduler_varies);
  EXPECT_EQ(t.mode, hw::DeterminismMode::kDeterministic);
}

TEST(NoiseVariant, Names) {
  EXPECT_EQ(variant_name(NoiseVariant::kAlgoPlusImpl), "ALGO+IMPL");
  EXPECT_EQ(variant_name(NoiseVariant::kAlgo), "ALGO");
  EXPECT_EQ(variant_name(NoiseVariant::kImpl), "IMPL");
  EXPECT_EQ(variant_name(NoiseVariant::kControl), "CONTROL");
}

}  // namespace
}  // namespace nnr::core
