#include "core/recipe.h"

#include <gtest/gtest.h>

namespace nnr::core {
namespace {

TEST(Recipe, CifarStepDecaySchedule) {
  const TrainRecipe recipe = cifar_recipe(8);
  EXPECT_EQ(recipe.schedule, ScheduleKind::kStepDecay);
  EXPECT_FLOAT_EQ(recipe.learning_rate(0), recipe.base_lr);
  EXPECT_FLOAT_EQ(recipe.learning_rate(recipe.decay_every),
                  recipe.base_lr * 0.1F);
}

TEST(Recipe, ImagenetWarmsUp) {
  const TrainRecipe recipe = imagenet_recipe(10);
  EXPECT_EQ(recipe.schedule, ScheduleKind::kWarmupCosine);
  EXPECT_LT(recipe.learning_rate(0), recipe.base_lr);
  EXPECT_FLOAT_EQ(recipe.learning_rate(1), recipe.base_lr);
}

TEST(Recipe, CelebaDisablesAugmentation) {
  // Paper Appendix B: augmentation everywhere except CelebA.
  EXPECT_TRUE(cifar_recipe(8).augment);
  EXPECT_TRUE(imagenet_recipe(8).augment);
  EXPECT_FALSE(celeba_recipe(8).augment);
}

TEST(Recipe, LearningRateNeverNegative) {
  for (const TrainRecipe& recipe :
       {cifar_recipe(8), imagenet_recipe(8), celeba_recipe(8)}) {
    for (std::int64_t epoch = 0; epoch < recipe.epochs; ++epoch) {
      EXPECT_GE(recipe.learning_rate(epoch), 0.0F);
    }
  }
}

TEST(Recipe, ShortRunsHaveValidDecayPeriod) {
  const TrainRecipe recipe = cifar_recipe(1);
  EXPECT_GE(recipe.decay_every, 1);
  EXPECT_GT(recipe.learning_rate(0), 0.0F);
}

}  // namespace
}  // namespace nnr::core
