// TrainJob::make_optimizer: the optimizer-ablation hook must preserve the
// determinism contract and default to the paper's SGD setting.
#include <memory>

#include <gtest/gtest.h>

#include "core/tasks.h"
#include "core/trainer.h"
#include "opt/adam.h"
#include "opt/sgd.h"

namespace nnr::core {
namespace {

Task tiny_task() {
  Task task = small_cnn_bn_cifar10();
  task.dataset = data::synth_cifar10(60, 30);
  task.recipe.epochs = 2;
  task.recipe.batch_size = 10;
  return task;
}

TEST(OptimizerOverride, DefaultMatchesExplicitSgdFactory) {
  const Task task = tiny_task();
  TrainJob default_job = task.job(NoiseVariant::kControl, hw::v100());
  TrainJob explicit_job = task.job(NoiseVariant::kControl, hw::v100());
  const float momentum = task.recipe.momentum;
  explicit_job.make_optimizer = [momentum](std::vector<nn::Param*> p) {
    return std::make_unique<opt::Sgd>(std::move(p), momentum);
  };
  const RunResult a = train_replicate(default_job, 0);
  const RunResult b = train_replicate(explicit_job, 0);
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST(OptimizerOverride, AdamUnderControlIsBitwiseReproducible) {
  // The determinism contract must hold for every optimizer, not just SGD.
  const Task task = tiny_task();
  TrainJob job = task.job(NoiseVariant::kControl, hw::v100());
  job.make_optimizer = [](std::vector<nn::Param*> p) {
    return std::make_unique<opt::Adam>(std::move(p));
  };
  const RunResult a = train_replicate(job, 0);
  const RunResult b = train_replicate(job, 7);  // replicate id must not leak
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.test_predictions, b.test_predictions);
}

TEST(OptimizerOverride, DifferentOptimizersReachDifferentWeights) {
  const Task task = tiny_task();
  TrainJob sgd_job = task.job(NoiseVariant::kControl, hw::v100());
  TrainJob adam_job = task.job(NoiseVariant::kControl, hw::v100());
  adam_job.make_optimizer = [](std::vector<nn::Param*> p) {
    return std::make_unique<opt::Adam>(std::move(p));
  };
  const RunResult sgd = train_replicate(sgd_job, 0);
  const RunResult adam = train_replicate(adam_job, 0);
  EXPECT_NE(sgd.final_weights, adam.final_weights);
}

TEST(OptimizerOverride, AdamStillExposesImplNoise) {
  // Kernel-ordering noise enters through the gradients, upstream of the
  // update rule, so it must survive an optimizer swap.
  const Task task = tiny_task();
  TrainJob job = task.job(NoiseVariant::kImpl, hw::v100());
  job.make_optimizer = [](std::vector<nn::Param*> p) {
    return std::make_unique<opt::Adam>(std::move(p));
  };
  const RunResult a = train_replicate(job, 0);
  const RunResult b = train_replicate(job, 1);
  EXPECT_NE(a.final_weights, b.final_weights);
}

}  // namespace
}  // namespace nnr::core
