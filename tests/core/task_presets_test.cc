// Task presets: every preset must produce a consistent (dataset, model,
// recipe) triple — the benches assume these invariants when fanning out
// cells. No training here (convergence is covered by the integration tests);
// these are cheap structural checks over the whole registry.
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/tasks.h"
#include "data/batcher.h"
#include "hw/execution_context.h"
#include "rng/generator.h"
#include "tensor/tensor.h"

namespace nnr::core {
namespace {

struct PresetCase {
  std::string label;
  std::function<Task()> make;
  std::int64_t num_classes;
};

std::vector<PresetCase> presets() {
  return {
      {"small_cnn_cifar10", small_cnn_cifar10, 10},
      {"small_cnn_bn_cifar10", small_cnn_bn_cifar10, 10},
      {"resnet18_cifar10", resnet18_cifar10, 10},
      {"resnet18_cifar100", resnet18_cifar100, 100},
      {"resnet50_imagenet", resnet50_imagenet, 20},
      {"vgg_cifar10", vgg_cifar10, 10},
      {"mobilenet_cifar10", mobilenet_cifar10, 10},
  };
}

class TaskPresetSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  static PresetCase preset() { return presets()[GetParam()]; }
};

TEST_P(TaskPresetSweep, DatasetSplitsAreNonEmptyAndDisjointSized) {
  const Task task = preset().make();
  EXPECT_GT(task.dataset.train.size(), 0);
  EXPECT_GT(task.dataset.test.size(), 0);
  EXPECT_EQ(task.dataset.train.labels.size(),
            static_cast<std::size_t>(task.dataset.train.size()));
  EXPECT_EQ(task.dataset.test.labels.size(),
            static_cast<std::size_t>(task.dataset.test.size()));
}

TEST_P(TaskPresetSweep, LabelsWithinModelClassRange) {
  const PresetCase c = preset();
  const Task task = c.make();
  for (const std::int32_t label : task.dataset.train.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, c.num_classes);
  }
}

TEST_P(TaskPresetSweep, ModelHeadMatchesClassCount) {
  const PresetCase c = preset();
  const Task task = c.make();
  nn::Model model = task.make_model();
  rng::Generator init(1);
  model.init_weights(init);
  hw::ExecutionContext hw_ctx(hw::v100(), hw::DeterminismMode::kDeterministic,
                              rng::Generator(0));
  nn::RunContext ctx{.hw = &hw_ctx, .training = false, .dropout = nullptr};
  // One test image through the model: the head width is the contract.
  const std::vector<std::uint32_t> first = {0u};
  tensor::Tensor one = data::gather_images(task.dataset.test.images, first);
  const tensor::Tensor logits = model.forward(one, ctx);
  ASSERT_EQ(logits.shape().rank(), 2);
  EXPECT_EQ(logits.shape()[1], c.num_classes);
}

TEST_P(TaskPresetSweep, RecipeIsSane) {
  const Task task = preset().make();
  EXPECT_GT(task.recipe.epochs, 0);
  EXPECT_GT(task.recipe.batch_size, 0);
  EXPECT_GT(task.recipe.base_lr, 0.0F);
  EXPECT_GT(task.default_replicates, 0);
  // The LR schedule must be non-increasing over epochs for every preset.
  float prev = task.recipe.learning_rate(0);
  for (std::int64_t e = 1; e < task.recipe.epochs; ++e) {
    const float lr = task.recipe.learning_rate(e);
    if (task.recipe.schedule == ScheduleKind::kStepDecay) {
      EXPECT_LE(lr, prev + 1e-9F);
    }
    prev = lr;
  }
}

TEST_P(TaskPresetSweep, JobInheritsTaskFields) {
  const Task task = preset().make();
  const TrainJob job = task.job(NoiseVariant::kImpl, hw::t4());
  EXPECT_EQ(job.dataset, &task.dataset);
  EXPECT_EQ(job.recipe.epochs, task.recipe.epochs);
  EXPECT_EQ(job.variant, NoiseVariant::kImpl);
  EXPECT_EQ(job.device.name, "T4");
}

INSTANTIATE_TEST_SUITE_P(AllPresets, TaskPresetSweep,
                         ::testing::Range<std::size_t>(0, 7),
                         [](const auto& info) {
                           return presets()[info.param].label;
                         });

}  // namespace
}  // namespace nnr::core
