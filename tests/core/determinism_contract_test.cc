// The determinism contract — the load-bearing guarantees of the whole study:
//
//   1. CONTROL replicates are bitwise identical (paper §2.2 "Control").
//   2. ALGO on a deterministic device with pinned seeds is bitwise stable.
//   3. IMPL replicates genuinely diverge on GPU devices.
//   4. TPU removes IMPL noise entirely (inherently deterministic hardware).
//   5. Host threading (NNR_THREADS) is invisible to the simulation: every
//      run is bitwise identical for any worker count — the invariant that
//      lets the blocked/threaded kernel engine coexist with the noise model.
#include <gtest/gtest.h>

#include "core/replicates.h"
#include "core/trainer.h"
#include "data/synth_images.h"
#include "nn/zoo.h"
#include "runtime/thread_pool.h"

namespace nnr::core {
namespace {

class DeterminismContract : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ClassificationDataset(data::synth_cifar10(120, 60));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static TrainJob job(NoiseVariant variant, hw::DeviceSpec device) {
    TrainJob j;
    j.make_model = [] { return nn::small_cnn(10, true); };
    j.dataset = dataset_;
    j.recipe = cifar_recipe(2);
    j.variant = variant;
    j.device = std::move(device);
    j.base_seed = 0xFEEDull;
    return j;
  }

  static data::ClassificationDataset* dataset_;
};

data::ClassificationDataset* DeterminismContract::dataset_ = nullptr;

TEST_F(DeterminismContract, ControlReplicatesAreBitwiseIdentical) {
  const auto results =
      run_replicates(job(NoiseVariant::kControl, hw::v100()), 3, 1);
  for (std::size_t r = 1; r < results.size(); ++r) {
    EXPECT_EQ(results[0].final_weights, results[r].final_weights)
        << "replicate " << r << " diverged under CONTROL";
    EXPECT_EQ(results[0].test_predictions, results[r].test_predictions);
  }
}

TEST_F(DeterminismContract, SameReplicateSameResult) {
  // Re-running the same replicate id reproduces the exact run (the property
  // that makes every experiment in this repo replayable).
  const TrainJob j = job(NoiseVariant::kAlgoPlusImpl, hw::v100());
  const RunResult a = train_replicate(j, 4);
  const RunResult b = train_replicate(j, 4);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.test_predictions, b.test_predictions);
}

TEST_F(DeterminismContract, ImplReplicatesDivergeOnGpu) {
  const auto results =
      run_replicates(job(NoiseVariant::kImpl, hw::v100()), 2, 1);
  EXPECT_NE(results[0].final_weights, results[1].final_weights)
      << "scheduler entropy failed to perturb training";
}

TEST_F(DeterminismContract, AlgoReplicatesDivergeThroughSeeds) {
  const auto results =
      run_replicates(job(NoiseVariant::kAlgo, hw::v100()), 2, 1);
  EXPECT_NE(results[0].final_weights, results[1].final_weights);
}

TEST_F(DeterminismContract, TpuRemovesImplNoise) {
  // IMPL variant = pinned algorithmic seeds. On inherently deterministic
  // hardware nothing is left to vary: replicates must be bitwise identical.
  const auto results =
      run_replicates(job(NoiseVariant::kImpl, hw::tpu_v2()), 2, 1);
  EXPECT_EQ(results[0].final_weights, results[1].final_weights);
  EXPECT_EQ(results[0].test_predictions, results[1].test_predictions);
}

TEST_F(DeterminismContract, DeterministicModeRemovesImplNoiseOnGpu) {
  TrainJob j = job(NoiseVariant::kImpl, hw::p100());
  // Force deterministic kernels while keeping the IMPL toggle structure:
  ChannelToggles toggles = toggles_for(NoiseVariant::kImpl);
  toggles.mode = hw::DeterminismMode::kDeterministic;
  toggles.scheduler_varies = false;
  j.toggles_override = toggles;
  const auto results = run_replicates(j, 2, 1);
  EXPECT_EQ(results[0].final_weights, results[1].final_weights);
}

TEST_F(DeterminismContract, ControlIsInvariantToHostThreadCount) {
  // CONTROL on a GPU goes through the deterministic (pairwise-tree) kernel
  // menu — the blocked fast path. Training an entire replicate must be
  // bitwise identical whether the host pool has 1 or 4 workers.
  runtime::ThreadPool::set_global_threads(1);
  const RunResult one = train_replicate(job(NoiseVariant::kControl,
                                            hw::v100()), 0);
  runtime::ThreadPool::set_global_threads(4);
  const RunResult four = train_replicate(job(NoiseVariant::kControl,
                                             hw::v100()), 0);
  runtime::ThreadPool::set_global_threads(0);
  EXPECT_EQ(one.final_weights, four.final_weights)
      << "host thread count leaked into CONTROL training";
  EXPECT_EQ(one.test_predictions, four.test_predictions);
}

TEST_F(DeterminismContract, ImplNoiseIsInvariantToHostThreadCount) {
  // Even with nondeterministic kernels, a given replicate id draws the same
  // scheduler entropy sequence regardless of host threading: launches are
  // issued in program order and the shuffled path runs the reference loop.
  runtime::ThreadPool::set_global_threads(1);
  const RunResult one =
      train_replicate(job(NoiseVariant::kAlgoPlusImpl, hw::v100()), 3);
  runtime::ThreadPool::set_global_threads(4);
  const RunResult four =
      train_replicate(job(NoiseVariant::kAlgoPlusImpl, hw::v100()), 3);
  runtime::ThreadPool::set_global_threads(0);
  EXPECT_EQ(one.final_weights, four.final_weights)
      << "host thread count leaked into the IMPL entropy stream";
}

TEST_F(DeterminismContract, TensorCoresStillNondeterministic) {
  // Paper §3.3: Tensor-Core training remains noisy due to CUDA-core
  // fallback reductions.
  const auto results = run_replicates(
      job(NoiseVariant::kImpl, hw::rtx5000_tensor_cores()), 2, 1);
  EXPECT_NE(results[0].final_weights, results[1].final_weights);
}

}  // namespace
}  // namespace nnr::core
