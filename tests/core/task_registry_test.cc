// The named-task registry: the single source of truth behind nnr_run --task
// and the study registry.
#include <set>

#include <gtest/gtest.h>

#include "core/tasks.h"

namespace nnr::core {
namespace {

TEST(TaskRegistry, CoversThePaperCells) {
  const auto& registry = task_registry();
  ASSERT_GE(registry.size(), 8u);
  std::set<std::string> ids;
  for (const TaskInfo& info : registry) {
    EXPECT_FALSE(info.id.empty());
    EXPECT_FALSE(info.description.empty());
    EXPECT_TRUE(static_cast<bool>(info.make));
    EXPECT_TRUE(ids.insert(info.id).second) << "duplicate id " << info.id;
  }
  for (const char* id : {"smallcnn", "smallcnn_bn", "smallcnn_dropout",
                         "resnet18_c10", "resnet18_c100", "resnet50_in",
                         "vgg", "mobilenet"}) {
    EXPECT_TRUE(ids.count(id) == 1) << "missing task " << id;
  }
}

TEST(TaskRegistry, FindTaskResolvesKnownIds) {
  const TaskInfo* info = find_task("smallcnn_bn");
  ASSERT_NE(info, nullptr);
  const Task task = info->make();
  EXPECT_EQ(task.name, "SmallCNN+BN CIFAR-10");
  EXPECT_GT(task.dataset.train.size(), 0);
  EXPECT_TRUE(static_cast<bool>(task.make_model));
}

TEST(TaskRegistry, FindTaskRejectsUnknownIds) {
  EXPECT_EQ(find_task("not_a_task"), nullptr);
  EXPECT_EQ(find_task(""), nullptr);
}

TEST(TaskRegistry, DropoutProbeRenamesItself) {
  // The composite probe task must carry its own name so cell labels and
  // cache identities differ from the plain SmallCNN.
  const TaskInfo* info = find_task("smallcnn_dropout");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->make().name, "SmallCNN+dropout CIFAR-10");
}

}  // namespace
}  // namespace nnr::core
