#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/flatten.h"
#include "nn/pooling.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(ReLU, ForwardClampsNegatives) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  ReLU relu;
  Tensor x(Shape{1, 1, 2, 2}, {-1.0F, 2.0F, 0.0F, -3.0F});
  const Tensor y = relu.forward(x, ctx);
  EXPECT_FLOAT_EQ(y.at(0), 0.0F);
  EXPECT_FLOAT_EQ(y.at(1), 2.0F);
  EXPECT_FLOAT_EQ(y.at(2), 0.0F);
  EXPECT_FLOAT_EQ(y.at(3), 0.0F);
}

TEST(ReLU, BackwardMasksGradient) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  ReLU relu;
  Tensor x(Shape{1, 1, 1, 4}, {-1.0F, 2.0F, 0.0F, 3.0F});
  (void)relu.forward(x, ctx);
  Tensor dy = Tensor::full(Shape{1, 1, 1, 4}, 1.0F);
  const Tensor dx = relu.backward(dy, ctx);
  EXPECT_FLOAT_EQ(dx.at(0), 0.0F);
  EXPECT_FLOAT_EQ(dx.at(1), 1.0F);
  EXPECT_FLOAT_EQ(dx.at(2), 0.0F);  // exact zero is not "positive"
  EXPECT_FLOAT_EQ(dx.at(3), 1.0F);
}

TEST(MaxPool, SelectsMaximum) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  MaxPool2x2 pool;
  Tensor x(Shape{1, 1, 2, 2}, {1.0F, 4.0F, 3.0F, 2.0F});
  const Tensor y = pool.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.at(0), 4.0F);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  MaxPool2x2 pool;
  Tensor x(Shape{1, 1, 2, 2}, {1.0F, 4.0F, 3.0F, 2.0F});
  (void)pool.forward(x, ctx);
  Tensor dy = Tensor::full(Shape{1, 1, 1, 1}, 5.0F);
  const Tensor dx = pool.backward(dy, ctx);
  EXPECT_FLOAT_EQ(dx.at(0), 0.0F);
  EXPECT_FLOAT_EQ(dx.at(1), 5.0F);
  EXPECT_FLOAT_EQ(dx.at(2), 0.0F);
  EXPECT_FLOAT_EQ(dx.at(3), 0.0F);
}

TEST(MaxPool, HalvesSpatialDims) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  MaxPool2x2 pool;
  Tensor x(Shape{2, 3, 8, 8});
  const Tensor y = pool.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 4, 4}));
}

TEST(GlobalAvgPool, AveragesPlane) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  GlobalAvgPool gap;
  Tensor x(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = gap.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 25.0F);
}

TEST(GlobalAvgPool, BackwardSpreadsUniformly) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  GlobalAvgPool gap;
  Tensor x(Shape{1, 1, 2, 2});
  (void)gap.forward(x, ctx);
  Tensor dy(Shape{1, 1}, {8.0F});
  const Tensor dx = gap.backward(dy, ctx);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(dx.at(i), 2.0F);
}

TEST(Dropout, EvalIsIdentity) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = false};
  Dropout drop(0.5F);
  Tensor x(Shape{1, 1, 2, 2});
  fill_random(x, 1);
  const Tensor y = drop.forward(x, ctx);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(y.at(i), x.at(i));
}

TEST(Dropout, TrainingDropsApproximatelyRate) {
  auto hw = deterministic_context();
  rng::Generator dropout_gen(2);
  RunContext ctx{.hw = &hw, .training = true, .dropout = &dropout_gen};
  Dropout drop(0.25F);
  Tensor x = Tensor::full(Shape{1, 1, 64, 64}, 1.0F);
  const Tensor y = drop.forward(x, ctx);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0F) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.numel()),
              0.25, 0.03);
}

TEST(Dropout, SurvivorsAreScaled) {
  auto hw = deterministic_context();
  rng::Generator dropout_gen(3);
  RunContext ctx{.hw = &hw, .training = true, .dropout = &dropout_gen};
  Dropout drop(0.5F);
  Tensor x = Tensor::full(Shape{1, 1, 8, 8}, 1.0F);
  const Tensor y = drop.forward(x, ctx);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y.at(i) == 0.0F || y.at(i) == 2.0F);
  }
}

TEST(Dropout, BackwardUsesSameMask) {
  auto hw = deterministic_context();
  rng::Generator dropout_gen(4);
  RunContext ctx{.hw = &hw, .training = true, .dropout = &dropout_gen};
  Dropout drop(0.5F);
  Tensor x = Tensor::full(Shape{1, 1, 4, 4}, 1.0F);
  const Tensor y = drop.forward(x, ctx);
  Tensor dy = Tensor::full(Shape{1, 1, 4, 4}, 1.0F);
  const Tensor dx = drop.backward(dy, ctx);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(dx.at(i), y.at(i));  // same 0-or-2 pattern
  }
}

TEST(Flatten, CollapsesToMatrix) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Flatten flatten;
  Tensor x(Shape{2, 3, 4, 4});
  const Tensor y = flatten.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
}

TEST(Flatten, BackwardRestoresShape) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Flatten flatten;
  Tensor x(Shape{2, 3, 2, 2});
  (void)flatten.forward(x, ctx);
  Tensor dy(Shape{2, 12});
  const Tensor dx = flatten.backward(dy, ctx);
  EXPECT_EQ(dx.shape(), (Shape{2, 3, 2, 2}));
}

}  // namespace
}  // namespace nnr::nn
