#include "nn/batchnorm.h"

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(BatchNorm, TrainingOutputIsNormalizedPerChannel) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BatchNorm2D bn(3);
  Tensor x(Shape{4, 3, 5, 5});
  fill_random(x, 1);
  // Skew channel 1 so normalization has work to do.
  for (std::int64_t n = 0; n < 4; ++n) {
    for (std::int64_t p = 0; p < 25; ++p) {
      x.at((n * 3 + 1) * 25 + p) = x.at((n * 3 + 1) * 25 + p) * 5.0F + 10.0F;
    }
  }
  const Tensor y = bn.forward(x, ctx);
  for (std::int64_t c = 0; c < 3; ++c) {
    double mean = 0.0;
    double var = 0.0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t p = 0; p < 25; ++p) {
        mean += y.at((n * 3 + c) * 25 + p);
      }
    }
    mean /= 100.0;
    for (std::int64_t n = 0; n < 4; ++n) {
      for (std::int64_t p = 0; p < 25; ++p) {
        const double d = y.at((n * 3 + c) * 25 + p) - mean;
        var += d * d;
      }
    }
    var /= 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-3);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GammaBetaApply) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BatchNorm2D bn(1);
  auto params = bn.params();
  params[0]->value.fill(2.0F);   // gamma
  params[1]->value.fill(-1.0F);  // beta
  Tensor x(Shape{2, 1, 2, 2});
  fill_random(x, 2);
  const Tensor y = bn.forward(x, ctx);
  double mean = 0.0;
  for (std::int64_t i = 0; i < 8; ++i) mean += y.at(i);
  EXPECT_NEAR(mean / 8.0, -1.0, 1e-3);  // beta shifts the mean
}

TEST(BatchNorm, RunningStatsConvergeToBatchStats) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BatchNorm2D bn(1, /*momentum=*/0.5F);
  Tensor x = Tensor::full(Shape{2, 1, 2, 2}, 3.0F);
  for (int step = 0; step < 20; ++step) (void)bn.forward(x, ctx);
  EXPECT_NEAR(bn.running_mean()[0], 3.0F, 1e-3);
  EXPECT_NEAR(bn.running_var()[0], 0.0F, 1e-3);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  auto hw = deterministic_context();
  RunContext train_ctx{.hw = &hw, .training = true};
  RunContext eval_ctx{.hw = &hw, .training = false};
  BatchNorm2D bn(1, 0.0F);  // momentum 0: running stats = last batch stats
  Tensor x(Shape{4, 1, 3, 3});
  fill_random(x, 3);
  (void)bn.forward(x, train_ctx);

  // At eval with the same input, output should match training-mode output
  // up to the biased/unbiased variance detail (we use biased in both).
  const Tensor y_eval = bn.forward(x, eval_ctx);
  auto hw2 = deterministic_context();
  RunContext train_ctx2{.hw = &hw2, .training = true};
  BatchNorm2D bn2(1, 0.0F);
  const Tensor y_train = bn2.forward(x, train_ctx2);
  for (std::int64_t i = 0; i < y_eval.numel(); ++i) {
    EXPECT_NEAR(y_eval.at(i), y_train.at(i), 1e-4);
  }
}

TEST(BatchNorm, BackwardGradientCheck) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BatchNorm2D bn(2);
  Tensor x(Shape{3, 2, 2, 2});
  fill_random(x, 4);

  auto scalar = [&]() -> double {
    const Tensor y = bn.forward(x, ctx);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      // Asymmetric weights so the gradient is informative.
      acc += (0.1 + 0.05 * static_cast<double>(i)) * y.at(i);
    }
    return acc;
  };

  for (Param* p : bn.params()) p->grad.fill(0.0F);
  const Tensor y = bn.forward(x, ctx);
  Tensor dy(y.shape());
  for (std::int64_t i = 0; i < dy.numel(); ++i) {
    dy.at(i) = 0.1F + 0.05F * static_cast<float>(i);
  }
  const Tensor dx = bn.backward(dy, ctx);

  const auto numeric_x = testutil::numerical_gradient(x.data(), scalar, 1e-2F);
  for (std::size_t i = 0; i < numeric_x.size(); ++i) {
    EXPECT_TRUE(close(dx.at(static_cast<std::int64_t>(i)), numeric_x[i], 8e-2,
                      5e-3))
        << "dx[" << i << "]";
  }
  for (Param* p : bn.params()) {
    const auto numeric =
        testutil::numerical_gradient(p->value.data(), scalar, 1e-2F);
    for (std::size_t i = 0; i < numeric.size(); ++i) {
      EXPECT_TRUE(close(p->grad.at(static_cast<std::int64_t>(i)), numeric[i],
                        8e-2, 5e-3))
          << p->name << "[" << i << "]";
    }
  }
}

TEST(BatchNorm, EvalRequiresNoCache) {
  auto hw = deterministic_context();
  RunContext eval_ctx{.hw = &hw, .training = false};
  BatchNorm2D bn(2);
  Tensor x(Shape{1, 2, 2, 2});
  fill_random(x, 5);
  const Tensor y = bn.forward(x, eval_ctx);  // must not crash
  EXPECT_EQ(y.shape(), x.shape());
}

}  // namespace
}  // namespace nnr::nn
