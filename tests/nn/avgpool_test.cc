#include <gtest/gtest.h>

#include "nn/pooling.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(AvgPool2x2, AveragesEachWindow) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  AvgPool2x2 pool;
  Tensor x(Shape{1, 1, 2, 2});
  x.at(0, 0, 0, 0) = 1.0F;
  x.at(0, 0, 0, 1) = 2.0F;
  x.at(0, 0, 1, 0) = 3.0F;
  x.at(0, 0, 1, 1) = 4.0F;
  const Tensor y = pool.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.at(0), 2.5F);
}

TEST(AvgPool2x2, HalvesSpatialDims) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  AvgPool2x2 pool;
  Tensor x(Shape{2, 3, 8, 8});
  fill_random(x, 3);
  const Tensor y = pool.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 4, 4}));
}

TEST(AvgPool2x2, DropsOddTrailingRowsAndColumns) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  AvgPool2x2 pool;
  Tensor x(Shape{1, 1, 5, 5});
  x.fill(1.0F);
  const Tensor y = pool.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.at(i), 1.0F);
  }
}

TEST(AvgPool2x2, BackwardSpreadsGradientEvenly) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  AvgPool2x2 pool;
  Tensor x(Shape{1, 1, 2, 2});
  fill_random(x, 5);
  (void)pool.forward(x, ctx);
  Tensor dy(Shape{1, 1, 1, 1});
  dy.at(0) = 4.0F;
  const Tensor dx = pool.backward(dy, ctx);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(dx.at(i), 1.0F);  // 4.0 * 1/4 to each tap
  }
}

TEST(AvgPool2x2, InputGradientMatchesNumerical) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  AvgPool2x2 pool;
  Tensor x(Shape{2, 2, 4, 4});
  fill_random(x, 9);

  auto scalar = [&]() -> double {
    const Tensor y = pool.forward(x, ctx);
    double s = 0.0;
    std::int64_t i = 0;
    for (const float v : y.data()) s += v * static_cast<double>(++i % 3);
    return s;
  };

  (void)pool.forward(x, ctx);
  Tensor dy(Shape{2, 2, 2, 2});
  std::int64_t i = 0;
  for (float& v : dy.data()) v = static_cast<float>(++i % 3);
  const Tensor dx = pool.backward(dy, ctx);

  const auto numeric = testutil::numerical_gradient(x.data(), scalar, 1e-2F);
  for (std::size_t j = 0; j < numeric.size(); ++j) {
    EXPECT_TRUE(close(dx.at(static_cast<std::int64_t>(j)), numeric[j]))
        << "element " << j;
  }
}

TEST(AvgPool2x2, GradientZeroInDroppedRegion) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  AvgPool2x2 pool;
  Tensor x(Shape{1, 1, 3, 3});
  fill_random(x, 11);
  (void)pool.forward(x, ctx);
  Tensor dy(Shape{1, 1, 1, 1});
  dy.fill(1.0F);
  const Tensor dx = pool.backward(dy, ctx);
  // Third row/column never entered any window.
  EXPECT_FLOAT_EQ(dx.at(0, 0, 2, 0), 0.0F);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 2, 2), 0.0F);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 2), 0.0F);
}

}  // namespace
}  // namespace nnr::nn
