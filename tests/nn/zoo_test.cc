#include "nn/zoo.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::deterministic_context;
using testutil::fill_random;

Tensor input_batch(std::int64_t n) {
  Tensor x(Shape{n, 3, 16, 16});
  fill_random(x, 42);
  return x;
}

TEST(Zoo, SmallCnnOutputShape) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = small_cnn(10, /*with_batchnorm=*/false);
  rng::Generator init(1);
  m.init_weights(init);
  const Tensor y = m.forward(input_batch(4), ctx);
  EXPECT_EQ(y.shape(), (Shape{4, 10}));
}

TEST(Zoo, SmallCnnWithBnHasMoreParams) {
  Model no_bn = small_cnn(10, false);
  Model with_bn = small_cnn(10, true);
  EXPECT_GT(with_bn.num_params(), no_bn.num_params());
}

TEST(Zoo, ResNet18sOutputShape) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = resnet18s(100);
  rng::Generator init(2);
  m.init_weights(init);
  const Tensor y = m.forward(input_batch(2), ctx);
  EXPECT_EQ(y.shape(), (Shape{2, 100}));
}

TEST(Zoo, ResNet50sOutputShape) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = resnet50s(20);
  rng::Generator init(3);
  m.init_weights(init);
  const Tensor y = m.forward(input_batch(2), ctx);
  EXPECT_EQ(y.shape(), (Shape{2, 20}));
}

TEST(Zoo, ResNet50sDeeperThanResNet18s) {
  // Both have six residual blocks, but bottlenecks hold three convs each:
  // the 50-style model carries strictly more trainable tensors.
  Model r18 = resnet18s(10);
  Model r50 = resnet50s(10);
  EXPECT_GT(r50.params().size(), r18.params().size());
}

class MediumCnnKernelTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MediumCnnKernelTest, ForwardBackwardShapes) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = medium_cnn(10, GetParam());
  rng::Generator init(4);
  m.init_weights(init);
  const Tensor y = m.forward(input_batch(2), ctx);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
  Tensor dy(y.shape());
  fill_random(dy, 5);
  const Tensor dx = m.backward(dy, ctx);
  EXPECT_EQ(dx.shape(), (Shape{2, 3, 16, 16}));
}

INSTANTIATE_TEST_SUITE_P(KernelSizes, MediumCnnKernelTest,
                         ::testing::Values(1, 3, 5, 7));

TEST(Zoo, InitConsumesInitStreamDeterministically) {
  Model a = resnet18s(10);
  Model b = resnet18s(10);
  rng::Generator ga(7);
  rng::Generator gb(7);
  a.init_weights(ga);
  b.init_weights(gb);
  const auto wa = a.flat_weights();
  const auto wb = b.flat_weights();
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(wa, wb);
}

TEST(Zoo, DifferentInitSeedsDiffer) {
  Model a = small_cnn(10, true);
  Model b = small_cnn(10, true);
  rng::Generator ga(8);
  rng::Generator gb(9);
  a.init_weights(ga);
  b.init_weights(gb);
  EXPECT_NE(a.flat_weights(), b.flat_weights());
}

TEST(Zoo, ZeroGradsClears) {
  Model m = small_cnn(10, false);
  rng::Generator g(10);
  m.init_weights(g);
  for (Param* p : m.params()) p->grad.fill(1.0F);
  m.zero_grads();
  for (Param* p : m.params()) {
    for (float v : p->grad.data()) EXPECT_EQ(v, 0.0F);
  }
}

TEST(Zoo, FlatWeightsLengthMatchesParamCount) {
  Model m = resnet18s(10);
  EXPECT_EQ(static_cast<std::int64_t>(m.flat_weights().size()), m.num_params());
}

}  // namespace
}  // namespace nnr::nn
