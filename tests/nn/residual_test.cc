#include "nn/residual.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(BasicBlock, IdentitySkipPreservesShape) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BasicBlock block(8, 8, 1);
  rng::Generator init(1);
  block.init_weights(init);
  Tensor x(Shape{2, 8, 4, 4});
  fill_random(x, 2);
  EXPECT_EQ(block.forward(x, ctx).shape(), x.shape());
}

TEST(BasicBlock, StridedBlockDownsamples) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BasicBlock block(8, 16, 2);
  rng::Generator init(3);
  block.init_weights(init);
  Tensor x(Shape{2, 8, 8, 8});
  fill_random(x, 4);
  EXPECT_EQ(block.forward(x, ctx).shape(), (Shape{2, 16, 4, 4}));
}

TEST(BasicBlock, IdentityBlockHasNoProjectionParams) {
  BasicBlock identity(8, 8, 1);
  BasicBlock projected(8, 16, 2);
  // conv1(w,b) + bn1(g,b) + conv2(w,b) + bn2(g,b) = 8 params; projection
  // adds conv(w,b) + bn(g,b) = 4 more.
  EXPECT_EQ(identity.params().size(), 8u);
  EXPECT_EQ(projected.params().size(), 12u);
}

TEST(BasicBlock, BackwardShapesMatchInput) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BasicBlock block(4, 8, 2);
  rng::Generator init(5);
  block.init_weights(init);
  Tensor x(Shape{2, 4, 8, 8});
  fill_random(x, 6);
  const Tensor y = block.forward(x, ctx);
  Tensor dy(y.shape());
  fill_random(dy, 7);
  EXPECT_EQ(block.backward(dy, ctx).shape(), x.shape());
}

TEST(BasicBlock, SkipPathCarriesGradient) {
  // Zero all conv weights: the main path is dead (convs output only bias=0,
  // BN maps to beta=0 ... ), so gradient must still reach the input through
  // the identity skip.
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BasicBlock block(2, 2, 1);
  for (Param* p : block.params()) p->value.fill(0.0F);
  Tensor x = Tensor::full(Shape{1, 2, 2, 2}, 1.0F);
  const Tensor y = block.forward(x, ctx);
  Tensor dy = Tensor::full(y.shape(), 1.0F);
  const Tensor dx = block.backward(dy, ctx);
  double grad_mass = 0.0;
  for (std::int64_t i = 0; i < dx.numel(); ++i) {
    grad_mass += std::abs(dx.at(i));
  }
  EXPECT_GT(grad_mass, 0.0);
}

TEST(BottleneckBlock, ExpansionControlsWidth) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BottleneckBlock block(8, 8, 2, 1);
  rng::Generator init(8);
  block.init_weights(init);
  Tensor x(Shape{1, 8, 4, 4});
  fill_random(x, 9);
  EXPECT_EQ(block.forward(x, ctx).shape(), (Shape{1, 16, 4, 4}));
}

TEST(BottleneckBlock, BackwardShapesMatchInput) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  BottleneckBlock block(8, 4, 2, 2);
  rng::Generator init(10);
  block.init_weights(init);
  Tensor x(Shape{2, 8, 8, 8});
  fill_random(x, 11);
  const Tensor y = block.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 4, 4}));
  Tensor dy(y.shape());
  fill_random(dy, 12);
  EXPECT_EQ(block.backward(dy, ctx).shape(), x.shape());
}

TEST(BottleneckBlock, ParamCount) {
  BottleneckBlock same(16, 8, 2, 1);  // in 16 == out 8*2: identity skip
  EXPECT_EQ(same.params().size(), 12u);  // 3 convs + 3 bns
  BottleneckBlock proj(8, 8, 2, 1);  // in 8 != out 16: projection
  EXPECT_EQ(proj.params().size(), 16u);
}

}  // namespace
}  // namespace nnr::nn
