#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(Softmax, RowsSumToOne) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{4, 7});
  fill_random(logits, 1);
  const Tensor probs = softmax(logits, ctx);
  for (std::int64_t i = 0; i < 4; ++i) {
    double row = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) row += probs.at(i, j);
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(Softmax, InvariantToLogitShift) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor a(Shape{1, 3}, {1.0F, 2.0F, 3.0F});
  Tensor b(Shape{1, 3}, {101.0F, 102.0F, 103.0F});
  const Tensor pa = softmax(a, ctx);
  const Tensor pb = softmax(b, ctx);
  for (std::int64_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(pa.at(0, j), pb.at(0, j), 1e-5);
  }
}

TEST(Softmax, HandlesExtremeLogits) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{1, 2}, {1000.0F, -1000.0F});
  const Tensor probs = softmax(logits, ctx);
  EXPECT_NEAR(probs.at(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(probs.at(0, 1), 0.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{2, 5});
  std::vector<std::int32_t> labels = {0, 4};
  const LossResult result = softmax_cross_entropy(logits, labels, ctx);
  EXPECT_NEAR(result.loss, std::log(5.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionLowLoss) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{1, 3}, {20.0F, 0.0F, 0.0F});
  std::vector<std::int32_t> labels = {0};
  const LossResult result = softmax_cross_entropy(logits, labels, ctx);
  EXPECT_LT(result.loss, 1e-4);
}

TEST(SoftmaxCrossEntropy, GradientIsProbMinusOnehotOverN) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{2, 3});
  fill_random(logits, 2);
  std::vector<std::int32_t> labels = {1, 2};
  const Tensor probs = softmax(logits, ctx);
  const LossResult result = softmax_cross_entropy(logits, labels, ctx);
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      const float expected =
          (probs.at(i, j) - (labels[static_cast<std::size_t>(i)] == j ? 1.0F
                                                                      : 0.0F)) /
          2.0F;
      EXPECT_NEAR(result.grad_logits.at(i, j), expected, 1e-5);
    }
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumerical) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{3, 4});
  fill_random(logits, 3);
  std::vector<std::int32_t> labels = {0, 1, 3};

  auto scalar = [&]() -> double {
    return softmax_cross_entropy(logits, labels, ctx).loss;
  };
  const LossResult result = softmax_cross_entropy(logits, labels, ctx);
  const auto numeric =
      testutil::numerical_gradient(logits.data(), scalar, 1e-2F);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_TRUE(close(result.grad_logits.at(static_cast<std::int64_t>(i)),
                      numeric[i]))
        << "grad[" << i << "]";
  }
}

TEST(SigmoidBce, KnownValue) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{1, 1}, {0.0F});
  Tensor targets(Shape{1, 1}, {1.0F});
  const LossResult result = sigmoid_bce(logits, targets, ctx);
  EXPECT_NEAR(result.loss, std::log(2.0), 1e-5);
  EXPECT_NEAR(result.grad_logits.at(0), -0.5F, 1e-5);
}

TEST(SigmoidBce, GradientMatchesNumerical) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{2, 3});
  fill_random(logits, 4);
  Tensor targets(Shape{2, 3}, {1, 0, 1, 0, 0, 1});

  auto scalar = [&]() -> double {
    return sigmoid_bce(logits, targets, ctx).loss;
  };
  const LossResult result = sigmoid_bce(logits, targets, ctx);
  const auto numeric =
      testutil::numerical_gradient(logits.data(), scalar, 1e-2F);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_TRUE(close(result.grad_logits.at(static_cast<std::int64_t>(i)),
                      numeric[i]))
        << "grad[" << i << "]";
  }
}

TEST(SigmoidBce, StableAtLargeLogits) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{1, 2}, {500.0F, -500.0F});
  Tensor targets(Shape{1, 2}, {1.0F, 0.0F});
  const LossResult result = sigmoid_bce(logits, targets, ctx);
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_NEAR(result.loss, 0.0, 1e-5);
}

}  // namespace
}  // namespace nnr::nn
