#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "nn/depthwise_conv.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(DepthwiseConv2D, IdentityKernelPassesInputThrough) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  DepthwiseConv2D conv(2, 3);  // 3x3, same padding
  // Center tap 1, everything else 0 -> identity per channel.
  Param* w = conv.params()[0];
  w->value.fill(0.0F);
  w->value.at(0, 4) = 1.0F;
  w->value.at(1, 4) = 1.0F;

  Tensor x(Shape{1, 2, 4, 4});
  fill_random(x, 3);
  const Tensor y = conv.forward(x, ctx);
  ASSERT_EQ(y.shape(), x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y.at(i), x.at(i), 1e-6F) << "element " << i;
  }
}

TEST(DepthwiseConv2D, ChannelsDoNotMix) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  DepthwiseConv2D conv(2, 3);
  rng::Generator init(5);
  conv.init_weights(init);

  // Zero out channel 1's input; its output must be bias-only regardless of
  // channel 0's content.
  Tensor x(Shape{1, 2, 4, 4});
  fill_random(x, 7);
  for (std::int64_t h = 0; h < 4; ++h) {
    for (std::int64_t w = 0; w < 4; ++w) x.at(0, 1, h, w) = 0.0F;
  }
  const Tensor y = conv.forward(x, ctx);
  for (std::int64_t h = 0; h < 4; ++h) {
    for (std::int64_t w = 0; w < 4; ++w) {
      EXPECT_FLOAT_EQ(y.at(0, 1, h, w), conv.params()[1]->value.at(1));
    }
  }
}

TEST(DepthwiseConv2D, MatchesConv2DWithBlockDiagonalWeights) {
  // Depthwise conv == grouped conv with groups = channels; embed the
  // depthwise filters into a dense Conv2D weight with zeros across channels.
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  const std::int64_t channels = 3;
  const std::int64_t k = 3;
  DepthwiseConv2D dw(channels, k);
  Conv2D dense(channels, channels, k);
  rng::Generator init(11);
  dw.init_weights(init);

  Param* dw_w = dw.params()[0];
  Param* dense_w = dense.params()[0];
  dense_w->value.fill(0.0F);
  dense.params()[1]->value.fill(0.0F);
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t t = 0; t < k * k; ++t) {
      // Dense weight layout: [out_c, in_c * k * k].
      dense_w->value.at(c, c * k * k + t) = dw_w->value.at(c, t);
    }
  }

  Tensor x(Shape{2, channels, 5, 5});
  fill_random(x, 13);
  const Tensor y_dw = dw.forward(x, ctx);
  const Tensor y_dense = dense.forward(x, ctx);
  ASSERT_EQ(y_dw.shape(), y_dense.shape());
  for (std::int64_t i = 0; i < y_dw.numel(); ++i) {
    EXPECT_NEAR(y_dw.at(i), y_dense.at(i), 1e-4F) << "element " << i;
  }
}

TEST(DepthwiseConv2D, StrideTwoHalvesOutput) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  DepthwiseConv2D conv(1, 3, /*stride=*/2, /*pad=*/1);
  rng::Generator init(17);
  conv.init_weights(init);
  Tensor x(Shape{1, 1, 8, 8});
  fill_random(x, 19);
  const Tensor y = conv.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4, 4}));
}

TEST(DepthwiseConv2D, ParameterGradientsMatchNumerical) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  DepthwiseConv2D conv(2, 3);
  rng::Generator init(23);
  conv.init_weights(init);

  Tensor x(Shape{2, 2, 4, 4});
  fill_random(x, 29);
  Tensor dy_fixed(Shape{2, 2, 4, 4});
  fill_random(dy_fixed, 31);

  auto scalar = [&]() -> double {
    const Tensor y = conv.forward(x, ctx);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      s += static_cast<double>(y.at(i)) * static_cast<double>(dy_fixed.at(i));
    }
    return s;
  };

  for (Param* p : conv.params()) p->grad.fill(0.0F);
  (void)conv.forward(x, ctx);
  const Tensor dx = conv.backward(dy_fixed, ctx);

  for (Param* p : conv.params()) {
    const auto numeric =
        testutil::numerical_gradient(p->value.data(), scalar, 1e-2F);
    for (std::size_t i = 0; i < numeric.size(); ++i) {
      EXPECT_TRUE(close(p->grad.at(static_cast<std::int64_t>(i)), numeric[i]))
          << p->name << "[" << i << "]";
    }
  }

  const auto numeric_x = testutil::numerical_gradient(x.data(), scalar, 1e-2F);
  for (std::size_t i = 0; i < numeric_x.size(); ++i) {
    EXPECT_TRUE(close(dx.at(static_cast<std::int64_t>(i)), numeric_x[i]))
        << "input[" << i << "]";
  }
}

TEST(DepthwiseConv2D, BitwiseDeterministicInDeterministicMode) {
  auto run = [](std::uint64_t entropy) {
    auto hw = testutil::deterministic_context();
    RunContext ctx{.hw = &hw, .training = true};
    (void)entropy;
    DepthwiseConv2D conv(3, 3);
    rng::Generator init(37);
    conv.init_weights(init);
    Tensor x(Shape{2, 3, 6, 6});
    fill_random(x, 41);
    Tensor y = conv.forward(x, ctx);
    Tensor dy(Shape{2, 3, 6, 6});
    fill_random(dy, 43);
    Tensor dx = conv.backward(dy, ctx);
    return std::pair{y, dx};
  };
  const auto [y1, dx1] = run(1);
  const auto [y2, dx2] = run(2);
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_EQ(y1.at(i), y2.at(i));
  }
  for (std::int64_t i = 0; i < dx1.numel(); ++i) {
    EXPECT_EQ(dx1.at(i), dx2.at(i));
  }
}

TEST(DepthwiseConv2D, WeightGradientDivergesUnderSchedulerNoise) {
  // The weight-gradient contraction over batch*pixels is the depthwise
  // layer's big reduction: under the sharded-shuffled policy two runs with
  // different entropy may round differently.
  auto run = [](std::uint64_t entropy) {
    auto hw = testutil::noisy_context(entropy);
    RunContext ctx{.hw = &hw, .training = true};
    DepthwiseConv2D conv(1, 5);
    rng::Generator init(47);
    conv.init_weights(init);
    Tensor x(Shape{4, 1, 12, 12});
    fill_random(x, 53);
    (void)conv.forward(x, ctx);
    Tensor dy(Shape{4, 1, 12, 12});
    fill_random(dy, 59);
    (void)conv.backward(dy, ctx);
    std::vector<float> dw(conv.params()[0]->grad.data().begin(),
                          conv.params()[0]->grad.data().end());
    return dw;
  };
  const auto a = run(101);
  const auto b = run(202);
  // Gradients stay numerically close...
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-3F);
  }
  // ...but are not required to be bitwise equal. (We do not assert
  // difference: with few lanes the orders can coincide; the accumulate
  // tests assert divergence statistically.)
}

}  // namespace
}  // namespace nnr::nn
