#include "nn/dense.h"

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(Dense, ForwardKnownValues) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Dense layer(2, 3);
  // W = [[1,0],[0,1],[1,1]], b = [0.5, -0.5, 0].
  auto params = layer.params();
  params[0]->value = Tensor(Shape{3, 2}, {1, 0, 0, 1, 1, 1});
  params[1]->value = Tensor(Shape{3}, {0.5F, -0.5F, 0.0F});
  const Tensor x(Shape{1, 2}, {2.0F, 3.0F});
  const Tensor y = layer.forward(x, ctx);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5F);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.5F);
  EXPECT_FLOAT_EQ(y.at(0, 2), 5.0F);
}

TEST(Dense, BackwardGradientCheck) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Dense layer(4, 3);
  rng::Generator init(1);
  layer.init_weights(init);

  Tensor x(Shape{5, 4});
  fill_random(x, 2);
  std::vector<std::int32_t> labels = {0, 1, 2, 0, 1};

  auto loss_value = [&]() -> double {
    const Tensor logits = layer.forward(x, ctx);
    return softmax_cross_entropy(logits, labels, ctx).loss;
  };

  // Analytic gradients.
  for (Param* p : layer.params()) p->grad.fill(0.0F);
  const Tensor logits = layer.forward(x, ctx);
  const LossResult loss = softmax_cross_entropy(logits, labels, ctx);
  (void)layer.backward(loss.grad_logits, ctx);

  for (Param* p : layer.params()) {
    const auto numeric = testutil::numerical_gradient(
        p->value.data(), loss_value, 1e-2F);
    for (std::size_t i = 0; i < numeric.size(); ++i) {
      EXPECT_TRUE(close(p->grad.at(static_cast<std::int64_t>(i)), numeric[i]))
          << p->name << "[" << i << "]: analytic "
          << p->grad.at(static_cast<std::int64_t>(i)) << " vs numeric "
          << numeric[i];
    }
  }
}

TEST(Dense, InputGradientCheck) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Dense layer(3, 2);
  rng::Generator init(3);
  layer.init_weights(init);

  Tensor x(Shape{2, 3});
  fill_random(x, 4);
  std::vector<std::int32_t> labels = {0, 1};

  auto loss_value = [&]() -> double {
    const Tensor logits = layer.forward(x, ctx);
    return softmax_cross_entropy(logits, labels, ctx).loss;
  };

  layer.params()[0]->grad.fill(0.0F);
  layer.params()[1]->grad.fill(0.0F);
  const Tensor logits = layer.forward(x, ctx);
  const LossResult loss = softmax_cross_entropy(logits, labels, ctx);
  const Tensor dx = layer.backward(loss.grad_logits, ctx);

  const auto numeric =
      testutil::numerical_gradient(x.data(), loss_value, 1e-2F);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_TRUE(close(dx.at(static_cast<std::int64_t>(i)), numeric[i]))
        << "dx[" << i << "]";
  }
}

TEST(Dense, GradAccumulatesAcrossBackwards) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Dense layer(2, 2);
  rng::Generator init(5);
  layer.init_weights(init);
  Tensor x(Shape{1, 2}, {1.0F, 1.0F});
  Tensor dy(Shape{1, 2}, {1.0F, 0.0F});

  (void)layer.forward(x, ctx);
  (void)layer.backward(dy, ctx);
  const float once = layer.params()[0]->grad.at(0);
  (void)layer.forward(x, ctx);
  (void)layer.backward(dy, ctx);
  EXPECT_FLOAT_EQ(layer.params()[0]->grad.at(0), 2.0F * once);
}

TEST(Dense, NameMentionsDims) {
  EXPECT_EQ(Dense(128, 32).name(), "Dense(128->32)");
}

}  // namespace
}  // namespace nnr::nn
