#include <cmath>

#include <gtest/gtest.h>

#include "nn/groupnorm.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(GroupNorm, NormalizesEachGroupToZeroMeanUnitVar) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  GroupNorm gn(4, 2);
  Tensor x(Shape{2, 4, 3, 3});
  fill_random(x, 3);
  for (float& v : x.data()) v = v * 5.0F + 2.0F;  // nontrivial mean/scale
  const Tensor y = gn.forward(x, ctx);

  const std::int64_t hw_sz = 9;
  const std::int64_t cg = 2;
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t g = 0; g < 2; ++g) {
      double sum = 0.0;
      double sum_sq = 0.0;
      for (std::int64_t ci = 0; ci < cg; ++ci) {
        for (std::int64_t p = 0; p < hw_sz; ++p) {
          const float v = y.at(n, g * cg + ci, p / 3, p % 3);
          sum += v;
          sum_sq += static_cast<double>(v) * v;
        }
      }
      const double m = static_cast<double>(cg * hw_sz);
      EXPECT_NEAR(sum / m, 0.0, 1e-5);
      EXPECT_NEAR(sum_sq / m, 1.0, 1e-3);
    }
  }
}

TEST(GroupNorm, GammaBetaScaleAndShift) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  GroupNorm gn(2, 1);
  gn.params()[0]->value.fill(3.0F);  // gamma
  gn.params()[1]->value.fill(-1.0F);  // beta
  Tensor x(Shape{1, 2, 2, 2});
  fill_random(x, 5);
  const Tensor y = gn.forward(x, ctx);
  // Output mean must be beta, stddev |gamma| (per the whole group).
  double sum = 0.0;
  for (const float v : y.data()) sum += v;
  EXPECT_NEAR(sum / 8.0, -1.0, 1e-5);
}

TEST(GroupNorm, PerSampleStatisticsAreBatchCompositionInvariant) {
  // The key contrast with BatchNorm: sample 0's output must not change when
  // a different sample 1 joins the batch. This is why GN cannot transmit
  // data-order noise through its statistics.
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  GroupNorm gn(2, 2);

  Tensor sample0(Shape{1, 2, 2, 2});
  fill_random(sample0, 7);

  Tensor batch_a(Shape{2, 2, 2, 2});
  Tensor batch_b(Shape{2, 2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) {
    batch_a.at(i) = sample0.at(i);
    batch_b.at(i) = sample0.at(i);
  }
  // Different companions.
  for (std::int64_t i = 8; i < 16; ++i) {
    batch_a.at(i) = 10.0F;
    batch_b.at(i) = -42.0F;
  }
  const Tensor ya = gn.forward(batch_a, ctx);
  const Tensor yb = gn.forward(batch_b, ctx);
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ya.at(i), yb.at(i)) << "element " << i;
  }
}

TEST(GroupNorm, GroupsEqualChannelsIsInstanceNorm) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  GroupNorm gn(3, 3);
  Tensor x(Shape{1, 3, 4, 4});
  fill_random(x, 9);
  const Tensor y = gn.forward(x, ctx);
  // Every channel is its own group: per-channel mean 0.
  for (std::int64_t c = 0; c < 3; ++c) {
    double sum = 0.0;
    for (std::int64_t h = 0; h < 4; ++h) {
      for (std::int64_t w = 0; w < 4; ++w) sum += y.at(0, c, h, w);
    }
    EXPECT_NEAR(sum / 16.0, 0.0, 1e-5);
  }
}

TEST(GroupNorm, GradientsMatchNumerical) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  GroupNorm gn(4, 2);
  Tensor x(Shape{2, 4, 2, 2});
  fill_random(x, 13);
  Tensor dy_fixed(Shape{2, 4, 2, 2});
  fill_random(dy_fixed, 17);

  auto scalar = [&]() -> double {
    const Tensor y = gn.forward(x, ctx);
    double s = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      s += static_cast<double>(y.at(i)) * static_cast<double>(dy_fixed.at(i));
    }
    return s;
  };

  for (Param* p : gn.params()) p->grad.fill(0.0F);
  (void)gn.forward(x, ctx);
  const Tensor dx = gn.backward(dy_fixed, ctx);

  for (Param* p : gn.params()) {
    const auto numeric =
        testutil::numerical_gradient(p->value.data(), scalar, 1e-2F);
    for (std::size_t i = 0; i < numeric.size(); ++i) {
      EXPECT_TRUE(close(p->grad.at(static_cast<std::int64_t>(i)), numeric[i]))
          << p->name << "[" << i << "]";
    }
  }
  const auto numeric_x = testutil::numerical_gradient(x.data(), scalar, 1e-2F);
  for (std::size_t i = 0; i < numeric_x.size(); ++i) {
    EXPECT_TRUE(close(dx.at(static_cast<std::int64_t>(i)), numeric_x[i]))
        << "input[" << i << "]";
  }
}

TEST(GroupNorm, RejectsIndivisibleGroupCountInDebug) {
  // Contract documented on the constructor; enforced by assert in debug.
  // In release builds constructing is UB-free but unsupported; we only
  // verify the valid path here.
  GroupNorm gn(6, 3);
  EXPECT_EQ(gn.groups(), 3);
}

}  // namespace
}  // namespace nnr::nn
