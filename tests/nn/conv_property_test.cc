// Property sweep: the im2col+GEMM convolution agrees with a naive direct
// convolution reference over a grid of (channels, kernel, stride, batch)
// configurations, and depthwise agrees with its own reference.
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "nn/conv2d.h"
#include "nn/depthwise_conv.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::deterministic_context;
using testutil::fill_random;

/// Direct NCHW convolution with "same"-for-stride-1 padding semantics
/// matching Conv2D (pad = k / 2 when pad < 0). Weight layout [out_c,
/// in_c*k*k], bias [out_c].
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor& b,
                  std::int64_t out_c, std::int64_t k, std::int64_t stride,
                  std::int64_t pad) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t in_c = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t width = x.shape()[3];
  const std::int64_t oh = (h + 2 * pad - k) / stride + 1;
  const std::int64_t ow = (width + 2 * pad - k) / stride + 1;
  Tensor y(Shape{n, out_c, oh, ow});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oc = 0; oc < out_c; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          // double accumulator: the reference answers "what is the exact
          // sum", the kernel under test answers "what does float32 give".
          double acc = b.at(oc);
          for (std::int64_t ic = 0; ic < in_c; ++ic) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t iy = oy * stride + ky - pad;
                const std::int64_t ix = ox * stride + kx - pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= width) continue;
                acc += static_cast<double>(x.at(ni, ic, iy, ix)) *
                       static_cast<double>(
                           w.at(oc, (ic * k + ky) * k + kx));
              }
            }
          }
          y.at(ni, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

// (batch, in_c, out_c, kernel, stride)
using ConvConfig = std::tuple<std::int64_t, std::int64_t, std::int64_t,
                              std::int64_t, std::int64_t>;

class ConvAgainstReference : public ::testing::TestWithParam<ConvConfig> {};

TEST_P(ConvAgainstReference, ForwardMatchesNaiveConvolution) {
  const auto [n, in_c, out_c, k, stride] = GetParam();
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};

  Conv2D conv(in_c, out_c, k, stride);
  rng::Generator init(static_cast<std::uint64_t>(
      n * 1000 + in_c * 100 + out_c * 10 + k));
  conv.init_weights(init);

  Tensor x(Shape{n, in_c, 8, 8});
  fill_random(x, 5);
  const Tensor y = conv.forward(x, ctx);
  const Tensor y_ref =
      naive_conv(x, conv.params()[0]->value, conv.params()[1]->value, out_c,
                 k, stride, k / 2);

  ASSERT_EQ(y.shape(), y_ref.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y.at(i), y_ref.at(i), 2e-4F) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, ConvAgainstReference,
    ::testing::Values(ConvConfig{1, 1, 1, 1, 1},   // pointwise
                      ConvConfig{2, 3, 4, 3, 1},   // the common case
                      ConvConfig{1, 2, 2, 5, 1},   // wide kernel
                      ConvConfig{1, 1, 3, 7, 1},   // widest paper kernel
                      ConvConfig{2, 2, 2, 3, 2},   // strided
                      ConvConfig{3, 4, 1, 1, 2},   // strided pointwise
                      ConvConfig{1, 3, 5, 5, 2})); // strided wide

class DepthwiseAgainstReference
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(DepthwiseAgainstReference, ForwardMatchesPerChannelNaiveConv) {
  const auto [channels, k] = GetParam();
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};

  DepthwiseConv2D conv(channels, k);
  rng::Generator init(static_cast<std::uint64_t>(channels * 10 + k));
  conv.init_weights(init);

  Tensor x(Shape{2, channels, 6, 6});
  fill_random(x, 9);
  const Tensor y = conv.forward(x, ctx);

  // Reference: each channel is an independent 1->1 convolution.
  const Tensor& w = conv.params()[0]->value;
  const Tensor& b = conv.params()[1]->value;
  for (std::int64_t c = 0; c < channels; ++c) {
    Tensor xc(Shape{2, 1, 6, 6});
    for (std::int64_t ni = 0; ni < 2; ++ni) {
      for (std::int64_t p = 0; p < 36; ++p) {
        xc.at(ni, 0, p / 6, p % 6) = x.at(ni, c, p / 6, p % 6);
      }
    }
    Tensor wc(Shape{1, k * k});
    for (std::int64_t t = 0; t < k * k; ++t) wc.at(0, t) = w.at(c, t);
    Tensor bc(Shape{1});
    bc.at(0) = b.at(c);
    const Tensor yc = naive_conv(xc, wc, bc, 1, k, 1, k / 2);
    for (std::int64_t ni = 0; ni < 2; ++ni) {
      for (std::int64_t p = 0; p < 36; ++p) {
        EXPECT_NEAR(y.at(ni, c, p / 6, p % 6), yc.at(ni, 0, p / 6, p % 6),
                    2e-4F)
            << "channel " << c << " element " << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChannelKernelGrid, DepthwiseAgainstReference,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3, 5)));

}  // namespace
}  // namespace nnr::nn
