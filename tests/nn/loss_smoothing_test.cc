#include <cmath>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(LabelSmoothing, ZeroSmoothingMatchesPlainCrossEntropy) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{3, 4});
  fill_random(logits, 3);
  std::vector<std::int32_t> labels = {1, 3, 0};
  const LossResult plain = softmax_cross_entropy(logits, labels, ctx);
  const LossResult smoothed =
      softmax_cross_entropy_smoothed(logits, labels, 0.0F, ctx);
  EXPECT_EQ(plain.loss, smoothed.loss);
  for (std::int64_t i = 0; i < plain.grad_logits.numel(); ++i) {
    EXPECT_EQ(plain.grad_logits.at(i), smoothed.grad_logits.at(i));
  }
}

TEST(LabelSmoothing, UniformLogitsGiveLogCLoss) {
  // With uniform probabilities p_j = 1/c, the cross-entropy against any
  // target distribution is log(c) regardless of smoothing.
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{2, 5});
  logits.fill(0.0F);
  std::vector<std::int32_t> labels = {0, 4};
  const LossResult r =
      softmax_cross_entropy_smoothed(logits, labels, 0.1F, ctx);
  EXPECT_NEAR(r.loss, std::log(5.0F), 1e-5F);
}

TEST(LabelSmoothing, SmoothingIncreasesLossOnConfidentCorrectPrediction) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{1, 3});
  logits.at(0, 0) = 10.0F;  // confidently class 0
  logits.at(0, 1) = 0.0F;
  logits.at(0, 2) = 0.0F;
  std::vector<std::int32_t> labels = {0};
  const LossResult plain = softmax_cross_entropy(logits, labels, ctx);
  const LossResult smoothed =
      softmax_cross_entropy_smoothed(logits, labels, 0.2F, ctx);
  EXPECT_GT(smoothed.loss, plain.loss);
}

TEST(LabelSmoothing, GradientRowsSumToZero) {
  // grad = (p - q)/n and both p and q are distributions, so each row of the
  // gradient sums to zero.
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{4, 6});
  fill_random(logits, 7);
  std::vector<std::int32_t> labels = {5, 0, 2, 3};
  const LossResult r =
      softmax_cross_entropy_smoothed(logits, labels, 0.1F, ctx);
  for (std::int64_t i = 0; i < 4; ++i) {
    double row_sum = 0.0;
    for (std::int64_t j = 0; j < 6; ++j) row_sum += r.grad_logits.at(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-6);
  }
}

TEST(LabelSmoothing, GradientMatchesNumerical) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{2, 3});
  fill_random(logits, 11);
  std::vector<std::int32_t> labels = {2, 1};
  const float s = 0.15F;

  auto scalar = [&]() -> double {
    return softmax_cross_entropy_smoothed(logits, labels, s, ctx).loss;
  };

  const LossResult r = softmax_cross_entropy_smoothed(logits, labels, s, ctx);
  const auto numeric =
      testutil::numerical_gradient(logits.data(), scalar, 1e-3F);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_TRUE(
        close(r.grad_logits.at(static_cast<std::int64_t>(i)), numeric[i]))
        << "element " << i;
  }
}

TEST(LabelSmoothing, PullsGradientTowardUniformTarget) {
  // On a perfectly predicted example the plain gradient is ~0 at the label,
  // while the smoothed gradient still pushes probability mass off the label.
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor logits(Shape{1, 2});
  logits.at(0, 0) = 20.0F;
  logits.at(0, 1) = -20.0F;
  std::vector<std::int32_t> labels = {0};
  const LossResult smoothed =
      softmax_cross_entropy_smoothed(logits, labels, 0.2F, ctx);
  // q_0 = 0.9, p_0 ~= 1 -> grad_0 ~= +0.1 (pushes logit 0 down).
  EXPECT_NEAR(smoothed.grad_logits.at(0, 0), 0.1F, 1e-3F);
  EXPECT_NEAR(smoothed.grad_logits.at(0, 1), -0.1F, 1e-3F);
}

}  // namespace
}  // namespace nnr::nn
