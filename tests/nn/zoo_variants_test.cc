// The ablation model-zoo variants: structural sanity, determinism, and
// trainability for small_cnn_dropout / small_cnn_norm / small_cnn_activation.
#include <gtest/gtest.h>

#include "nn/zoo.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::deterministic_context;
using testutil::fill_random;

Tensor batch_of(std::int64_t n, std::uint64_t seed) {
  Tensor x(Shape{n, 3, 16, 16});
  fill_random(x, seed);
  return x;
}

TEST(ZooVariants, DropoutVariantProducesClassLogits) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = false};
  Model m = small_cnn_dropout(10, 0.5F);
  rng::Generator init(3);
  m.init_weights(init);
  const Tensor x = batch_of(2, 5);
  const Tensor logits = m.forward(x, ctx);
  EXPECT_EQ(logits.shape(), (Shape{2, 10}));
}

TEST(ZooVariants, DropoutConsumesTheDropoutChannelOnlyWhenTraining) {
  auto hw = deterministic_context();
  Model m = small_cnn_dropout(10, 0.5F);
  rng::Generator init(7);
  m.init_weights(init);
  const Tensor x = batch_of(2, 9);

  rng::Generator dropout_a(11);
  rng::Generator dropout_b(12);
  RunContext train_a{.hw = &hw, .training = true, .dropout = &dropout_a};
  RunContext train_b{.hw = &hw, .training = true, .dropout = &dropout_b};
  const Tensor ya = m.forward(x, train_a);
  const Tensor yb = m.forward(x, train_b);
  bool any_difference = false;
  for (std::int64_t i = 0; i < ya.numel(); ++i) {
    if (ya.at(i) != yb.at(i)) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "training-mode dropout ignored its channel";

  // Eval mode: no dropout draws, deterministic output.
  RunContext eval{.hw = &hw, .training = false};
  const Tensor e1 = m.forward(x, eval);
  const Tensor e2 = m.forward(x, eval);
  for (std::int64_t i = 0; i < e1.numel(); ++i) {
    ASSERT_EQ(e1.at(i), e2.at(i));
  }
}

class NormVariant : public ::testing::TestWithParam<NormKind> {};

TEST_P(NormVariant, ForwardBackwardRoundTrips) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = small_cnn_norm(10, GetParam());
  rng::Generator init(13);
  m.init_weights(init);
  const Tensor x = batch_of(3, 17);
  const Tensor logits = m.forward(x, ctx);
  ASSERT_EQ(logits.shape(), (Shape{3, 10}));
  Tensor dy(Shape{3, 10});
  fill_random(dy, 19);
  const Tensor dx = m.backward(dy, ctx);
  EXPECT_EQ(dx.shape(), x.shape());
  // Gradients reached the stem conv.
  double grad_mag = 0.0;
  for (const float g : m.params()[0]->grad.data()) {
    grad_mag += std::abs(static_cast<double>(g));
  }
  EXPECT_GT(grad_mag, 0.0);
}

TEST_P(NormVariant, DeterministicModeIsBitwiseStable) {
  auto run = [&] {
    auto hw = deterministic_context();
    RunContext ctx{.hw = &hw, .training = true};
    Model m = small_cnn_norm(10, GetParam());
    rng::Generator init(23);
    m.init_weights(init);
    const Tensor x = batch_of(2, 29);
    return m.forward(x, ctx);
  };
  const Tensor a = run();
  const Tensor b = run();
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllNorms, NormVariant,
                         ::testing::Values(NormKind::kNone, NormKind::kBatch,
                                           NormKind::kGroup));

class ActVariant : public ::testing::TestWithParam<ActKind> {};

TEST_P(ActVariant, ForwardBackwardRoundTrips) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = small_cnn_activation(10, GetParam());
  rng::Generator init(31);
  m.init_weights(init);
  const Tensor x = batch_of(2, 37);
  const Tensor logits = m.forward(x, ctx);
  ASSERT_EQ(logits.shape(), (Shape{2, 10}));
  Tensor dy(Shape{2, 10});
  fill_random(dy, 41);
  const Tensor dx = m.backward(dy, ctx);
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST_P(ActVariant, ParameterCountIsActivationIndependent) {
  Model m = small_cnn_activation(10, GetParam());
  Model relu = small_cnn_activation(10, ActKind::kReLU);
  EXPECT_EQ(m.num_params(), relu.num_params());
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActVariant,
                         ::testing::Values(ActKind::kReLU, ActKind::kSiLU,
                                           ActKind::kGELU, ActKind::kTanh));

}  // namespace
}  // namespace nnr::nn
