#include "nn/conv2d.h"

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

/// Naive direct convolution reference (stride 1).
Tensor naive_conv(const Tensor& x, const Tensor& w_flat, const Tensor& bias,
                  std::int64_t cout, std::int64_t k, std::int64_t pad) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t cin = x.shape()[1];
  const std::int64_t h = x.shape()[2];
  const std::int64_t wdt = x.shape()[3];
  Tensor y(Shape{n, cout, h, wdt});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t co = 0; co < cout; ++co) {
      for (std::int64_t oy = 0; oy < h; ++oy) {
        for (std::int64_t ox = 0; ox < wdt; ++ox) {
          double acc = bias.at(co);
          for (std::int64_t ci = 0; ci < cin; ++ci) {
            for (std::int64_t ky = 0; ky < k; ++ky) {
              for (std::int64_t kx = 0; kx < k; ++kx) {
                const std::int64_t iy = oy + ky - pad;
                const std::int64_t ix = ox + kx - pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wdt) continue;
                acc += static_cast<double>(x.at(ni, ci, iy, ix)) *
                       w_flat.at(co, (ci * k + ky) * k + kx);
              }
            }
          }
          y.at(ni, co, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

TEST(Conv2D, ForwardMatchesNaiveReference) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Conv2D layer(2, 3, 3);
  rng::Generator init(1);
  layer.init_weights(init);
  auto params = layer.params();
  fill_random(params[1]->value, 7);  // non-zero bias

  Tensor x(Shape{2, 2, 5, 5});
  fill_random(x, 2);
  const Tensor y = layer.forward(x, ctx);
  const Tensor ref =
      naive_conv(x, params[0]->value, params[1]->value, 3, 3, 1);
  ASSERT_EQ(y.shape(), ref.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_NEAR(y.at(i), ref.at(i), 1e-4) << "at " << i;
  }
}

TEST(Conv2D, OutputShapeWithStride) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Conv2D layer(3, 8, 3, /*stride=*/2);
  rng::Generator init(2);
  layer.init_weights(init);
  Tensor x(Shape{4, 3, 8, 8});
  const Tensor y = layer.forward(x, ctx);
  EXPECT_EQ(y.shape(), (Shape{4, 8, 4, 4}));
}

TEST(Conv2D, OneByOneConvIsChannelMix) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Conv2D layer(2, 1, 1, 1, 0);
  auto params = layer.params();
  params[0]->value = Tensor(Shape{1, 2}, {2.0F, 3.0F});
  Tensor x(Shape{1, 2, 2, 2}, {1, 1, 1, 1, 2, 2, 2, 2});
  const Tensor y = layer.forward(x, ctx);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(y.at(i), 8.0F);  // 2*1 + 3*2
  }
}

TEST(Conv2D, WeightGradientCheck) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Conv2D layer(1, 2, 3);
  rng::Generator init(3);
  layer.init_weights(init);

  Tensor x(Shape{2, 1, 4, 4});
  fill_random(x, 4);
  std::vector<std::int32_t> labels = {0, 1};

  // Head: global sum per channel via flatten to logits by mean pooling —
  // use a tiny loss: mean CE over per-pixel logits is complex, so instead sum
  // activations into 2 logits via fixed weights (spatial mean).
  auto logits_of = [&]() -> Tensor {
    const Tensor y = layer.forward(x, ctx);  // [2, 2, 4, 4]
    Tensor logits(Shape{2, 2});
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t c = 0; c < 2; ++c) {
        double acc = 0.0;
        for (std::int64_t p = 0; p < 16; ++p) {
          acc += y.at((n * 2 + c) * 16 + p);
        }
        logits.at(n, c) = static_cast<float>(acc / 16.0);
      }
    }
    return logits;
  };
  auto loss_value = [&]() -> double {
    const Tensor logits = logits_of();
    return softmax_cross_entropy(logits, labels, ctx).loss;
  };

  for (Param* p : layer.params()) p->grad.fill(0.0F);
  const Tensor logits = logits_of();
  const LossResult loss = softmax_cross_entropy(logits, labels, ctx);
  // Route d(loss)/d(logits) back through the spatial mean.
  Tensor dy(Shape{2, 2, 4, 4});
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t c = 0; c < 2; ++c) {
      for (std::int64_t p = 0; p < 16; ++p) {
        dy.at((n * 2 + c) * 16 + p) = loss.grad_logits.at(n, c) / 16.0F;
      }
    }
  }
  (void)layer.backward(dy, ctx);

  for (Param* p : layer.params()) {
    const auto numeric =
        testutil::numerical_gradient(p->value.data(), loss_value, 1e-2F);
    for (std::size_t i = 0; i < numeric.size(); ++i) {
      EXPECT_TRUE(close(p->grad.at(static_cast<std::int64_t>(i)), numeric[i]))
          << p->name << "[" << i << "]";
    }
  }
}

TEST(Conv2D, InputGradientCheck) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Conv2D layer(1, 1, 3);
  rng::Generator init(5);
  layer.init_weights(init);

  Tensor x(Shape{1, 1, 3, 3});
  fill_random(x, 6);

  auto scalar = [&]() -> double {
    const Tensor y = layer.forward(x, ctx);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += 0.5 * static_cast<double>(y.at(i)) * y.at(i);
    }
    return acc;
  };

  const Tensor y = layer.forward(x, ctx);
  Tensor dy = y;  // d(0.5*sum y^2)/dy = y
  const Tensor dx = layer.backward(dy, ctx);

  const auto numeric = testutil::numerical_gradient(x.data(), scalar, 1e-2F);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_TRUE(close(dx.at(static_cast<std::int64_t>(i)), numeric[i], 5e-2,
                      5e-3))
        << "dx[" << i << "]";
  }
}

TEST(Conv2D, KernelAccessor) {
  EXPECT_EQ(Conv2D(3, 8, 5).kernel(), 5);
}

}  // namespace
}  // namespace nnr::nn
