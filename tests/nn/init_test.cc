#include "nn/init.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"

namespace nnr::nn {
namespace {

TEST(Init, GlorotUniformBounds) {
  rng::Generator gen(1);
  tensor::Tensor w(tensor::Shape{64, 32});
  glorot_uniform(gen, w, 32, 64);
  const float limit = std::sqrt(6.0F / (32 + 64));
  for (float v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(Init, GlorotUniformNotDegenerate) {
  rng::Generator gen(2);
  tensor::Tensor w(tensor::Shape{64, 64});
  glorot_uniform(gen, w, 64, 64);
  double mean = 0.0;
  for (float v : w.data()) mean += v;
  mean /= static_cast<double>(w.numel());
  EXPECT_NEAR(mean, 0.0, 0.01);
}

TEST(Init, HeNormalVariance) {
  rng::Generator gen(3);
  tensor::Tensor w(tensor::Shape{256, 128});
  const std::int64_t fan_in = 128;
  he_normal(gen, w, fan_in);
  double sum_sq = 0.0;
  for (float v : w.data()) sum_sq += static_cast<double>(v) * v;
  const double var = sum_sq / static_cast<double>(w.numel());
  EXPECT_NEAR(var, 2.0 / fan_in, 0.1 * 2.0 / fan_in);
}

TEST(Init, SameSeedSameWeights) {
  rng::Generator a(4);
  rng::Generator b(4);
  tensor::Tensor wa(tensor::Shape{8, 8});
  tensor::Tensor wb(tensor::Shape{8, 8});
  he_normal(a, wa, 8);
  he_normal(b, wb, 8);
  for (std::int64_t i = 0; i < wa.numel(); ++i) {
    EXPECT_EQ(wa.at(i), wb.at(i));
  }
}

TEST(Init, DifferentSeedDifferentWeights) {
  rng::Generator a(5);
  rng::Generator b(6);
  tensor::Tensor wa(tensor::Shape{8, 8});
  tensor::Tensor wb(tensor::Shape{8, 8});
  he_normal(a, wa, 8);
  he_normal(b, wb, 8);
  int differing = 0;
  for (std::int64_t i = 0; i < wa.numel(); ++i) {
    if (wa.at(i) != wb.at(i)) ++differing;
  }
  EXPECT_GT(differing, 60);
}

}  // namespace
}  // namespace nnr::nn
