// VGG-s and MobileNet-s family models: shapes, parameter structure,
// backward pass, and the depthwise-vs-dense reduction-width contrast that
// motivates adding them to the zoo.
#include <cstdint>

#include <gtest/gtest.h>

#include "nn/zoo.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::deterministic_context;
using testutil::fill_random;

Tensor input_batch(std::int64_t n) {
  Tensor x(Shape{n, 3, 16, 16});
  fill_random(x, 77);
  return x;
}

TEST(ZooFamilies, VggOutputShape) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = vgg_s(10);
  rng::Generator init(1);
  m.init_weights(init);
  const Tensor y = m.forward(input_batch(4), ctx);
  EXPECT_EQ(y.shape(), (Shape{4, 10}));
}

TEST(ZooFamilies, MobileNetOutputShape) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = mobilenet_s(10);
  rng::Generator init(2);
  m.init_weights(init);
  const Tensor y = m.forward(input_batch(3), ctx);
  EXPECT_EQ(y.shape(), (Shape{3, 10}));
}

TEST(ZooFamilies, VggDeeperThanSmallCnn) {
  // Six convs vs three: VGG-s is the deepest plain stack in the zoo.
  Model vgg = vgg_s(10);
  Model small = small_cnn(10, /*with_batchnorm=*/true);
  EXPECT_GT(vgg.params().size(), small.params().size());
}

TEST(ZooFamilies, MobileNetUsesFewerParamsThanVgg) {
  // Depthwise separability is a parameter-efficiency technique; at matched
  // width the separable network must be smaller.
  Model mob = mobilenet_s(10);
  Model vgg = vgg_s(10);
  EXPECT_LT(mob.num_params(), vgg.num_params());
}

void expect_finite_grads(Model m) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  rng::Generator init(3);
  m.init_weights(init);
  m.zero_grads();
  const Tensor y = m.forward(input_batch(2), ctx);
  Tensor grad(y.shape());
  fill_random(grad, 5);
  (void)m.backward(grad, ctx);
  for (Param* p : m.params()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(p->grad.raw()[i]));
    }
  }
}

TEST(ZooFamilies, VggBackwardProducesFiniteGrads) {
  expect_finite_grads(vgg_s(5));
}

TEST(ZooFamilies, MobileNetBackwardProducesFiniteGrads) {
  expect_finite_grads(mobilenet_s(5));
}

TEST(ZooFamilies, InitIsChannelDeterministic) {
  // Same init generator state -> identical weights, for both families.
  for (Model (*make)() : {+[] { return vgg_s(10); },
                          +[] { return mobilenet_s(10); }}) {
    Model a = make();
    Model b = make();
    rng::Generator ga(9);
    rng::Generator gb(9);
    a.init_weights(ga);
    b.init_weights(gb);
    EXPECT_EQ(a.flat_weights(), b.flat_weights());
  }
}

TEST(ZooFamilies, EvalModeDiffersFromTrainModeUnderBn) {
  // Both families carry BatchNorm: training-mode forward (batch stats) and
  // eval-mode forward (running stats) must differ on a fresh model.
  auto hw = deterministic_context();
  Model m = mobilenet_s(10);
  rng::Generator init(4);
  m.init_weights(init);
  const Tensor x = input_batch(4);
  RunContext train_ctx{.hw = &hw, .training = true};
  RunContext eval_ctx{.hw = &hw, .training = false};
  const Tensor y_train = m.forward(x, train_ctx);
  const Tensor y_eval = m.forward(x, eval_ctx);
  bool any_diff = false;
  for (std::int64_t i = 0; i < y_train.numel(); ++i) {
    if (y_train.raw()[i] != y_eval.raw()[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(ZooFamilies, FlatWeightsRoundTrip) {
  // load_flat_weights is the exact inverse of flat_weights.
  Model a = vgg_s(10);
  Model b = vgg_s(10);
  rng::Generator ga(11);
  rng::Generator gb(22);
  a.init_weights(ga);
  b.init_weights(gb);
  ASSERT_NE(a.flat_weights(), b.flat_weights());
  b.load_flat_weights(a.flat_weights());
  EXPECT_EQ(a.flat_weights(), b.flat_weights());
}

class FamilyClassCount : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(FamilyClassCount, HeadsMatchRequestedClasses) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = false};
  const std::int64_t classes = GetParam();
  const auto check = [&](Model m) {
    rng::Generator init(6);
    m.init_weights(init);
    const Tensor y = m.forward(input_batch(1), ctx);
    EXPECT_EQ(y.shape(), (Shape{1, classes}));
  };
  check(vgg_s(classes));
  check(mobilenet_s(classes));
}

INSTANTIATE_TEST_SUITE_P(Classes, FamilyClassCount,
                         ::testing::Values(2, 10, 100));

}  // namespace
}  // namespace nnr::nn
