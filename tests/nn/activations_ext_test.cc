// LeakyReLU / SiLU / GELU / Tanh: values, gradients, and the smoothness
// property that motivates them (Shamir et al. 2020: smooth activations
// damp perturbation amplification).
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

TEST(LeakyReLU, ForwardAppliesSlopeOnNegativeSide) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  LeakyReLU layer(0.1F);
  Tensor x(Shape{4});
  x.at(0) = 2.0F;
  x.at(1) = -2.0F;
  x.at(2) = 0.0F;
  x.at(3) = -0.5F;
  const Tensor y = layer.forward(x, ctx);
  EXPECT_FLOAT_EQ(y.at(0), 2.0F);
  EXPECT_FLOAT_EQ(y.at(1), -0.2F);
  EXPECT_FLOAT_EQ(y.at(2), 0.0F);
  EXPECT_FLOAT_EQ(y.at(3), -0.05F);
}

TEST(LeakyReLU, BackwardUsesPerElementSlope) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  LeakyReLU layer(0.25F);
  Tensor x(Shape{2});
  x.at(0) = 3.0F;
  x.at(1) = -3.0F;
  (void)layer.forward(x, ctx);
  Tensor dy(Shape{2});
  dy.fill(1.0F);
  const Tensor dx = layer.backward(dy, ctx);
  EXPECT_FLOAT_EQ(dx.at(0), 1.0F);
  EXPECT_FLOAT_EQ(dx.at(1), 0.25F);
}

TEST(SiLU, KnownValues) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  SiLU layer;
  Tensor x(Shape{3});
  x.at(0) = 0.0F;  // 0 * 0.5 = 0
  x.at(1) = 1.0F;  // 1 * sigmoid(1)
  x.at(2) = -1.0F;
  const Tensor y = layer.forward(x, ctx);
  EXPECT_FLOAT_EQ(y.at(0), 0.0F);
  EXPECT_NEAR(y.at(1), 1.0F / (1.0F + std::exp(-1.0F)), 1e-6F);
  EXPECT_NEAR(y.at(2), -1.0F / (1.0F + std::exp(1.0F)), 1e-6F);
}

TEST(GELU, KnownValues) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  GELU layer;
  Tensor x(Shape{3});
  x.at(0) = 0.0F;
  x.at(1) = 1.0F;
  x.at(2) = -10.0F;  // deep negative tail -> ~0
  const Tensor y = layer.forward(x, ctx);
  EXPECT_FLOAT_EQ(y.at(0), 0.0F);
  EXPECT_NEAR(y.at(1), 0.84134F, 1e-4F);  // 1 * Phi(1)
  EXPECT_NEAR(y.at(2), 0.0F, 1e-5F);
}

TEST(TanhLayer, MatchesStdTanh) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tanh layer;
  Tensor x(Shape{5});
  fill_random(x, 7);
  const Tensor y = layer.forward(x, ctx);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(y.at(i), std::tanh(x.at(i)));
  }
}

// Parameterized numerical gradient check over all new activations.
enum class Act { kLeaky, kSiLU, kGELU, kTanh };

std::unique_ptr<Layer> make_act(Act a) {
  switch (a) {
    case Act::kLeaky:
      return std::make_unique<LeakyReLU>(0.1F);
    case Act::kSiLU:
      return std::make_unique<SiLU>();
    case Act::kGELU:
      return std::make_unique<GELU>();
    case Act::kTanh:
      return std::make_unique<Tanh>();
  }
  return nullptr;
}

class ActivationGradCheck : public ::testing::TestWithParam<Act> {};

TEST_P(ActivationGradCheck, InputGradientMatchesNumerical) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  auto layer = make_act(GetParam());
  Tensor x(Shape{2, 3});
  fill_random(x, 21);
  // Keep away from the LeakyReLU kink so finite differences are valid.
  for (float& v : x.data()) {
    if (std::fabs(v) < 0.05F) v += 0.1F;
  }

  auto scalar = [&]() -> double {
    const Tensor y = layer->forward(x, ctx);
    double s = 0.0;
    for (const float v : y.data()) s += v;  // loss = sum(y)
    return s;
  };

  (void)layer->forward(x, ctx);
  Tensor dy(Shape{2, 3});
  dy.fill(1.0F);
  const Tensor dx = layer->backward(dy, ctx);

  const auto numeric = testutil::numerical_gradient(x.data(), scalar, 1e-3F);
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    EXPECT_TRUE(close(dx.at(static_cast<std::int64_t>(i)), numeric[i]))
        << "element " << i << ": analytic "
        << dx.at(static_cast<std::int64_t>(i)) << " numeric " << numeric[i];
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradCheck,
                         ::testing::Values(Act::kLeaky, Act::kSiLU,
                                           Act::kGELU, Act::kTanh));

// The property that motivates smooth activations: under a small input
// perturbation, the *gradient* of ReLU can jump by O(1) (a unit flips), while
// SiLU/GELU/Tanh gradients move by O(epsilon).
TEST(ActivationSmoothness, SmoothActivationsHaveLipschitzGradients) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  const float eps = 1e-3F;

  // Input straddling zero: the worst case for the ReLU kink.
  Tensor x(Shape{1});
  x.at(0) = -eps / 2.0F;
  Tensor x2(Shape{1});
  x2.at(0) = eps / 2.0F;
  Tensor dy(Shape{1});
  dy.fill(1.0F);

  auto grad_at = [&](Layer& layer, const Tensor& input) {
    (void)layer.forward(input, ctx);
    return layer.backward(dy, ctx).at(0);
  };

  ReLU relu;
  const float relu_jump = std::fabs(grad_at(relu, x2) - grad_at(relu, x));
  EXPECT_FLOAT_EQ(relu_jump, 1.0F);  // 0 -> 1 across the kink

  SiLU silu;
  GELU gelu;
  Tanh tanh_layer;
  EXPECT_LT(std::fabs(grad_at(silu, x2) - grad_at(silu, x)), 1e-2F);
  EXPECT_LT(std::fabs(grad_at(gelu, x2) - grad_at(gelu, x)), 1e-2F);
  EXPECT_LT(std::fabs(grad_at(tanh_layer, x2) - grad_at(tanh_layer, x)),
            1e-2F);
}

}  // namespace
}  // namespace nnr::nn
