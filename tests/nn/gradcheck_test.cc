// End-to-end gradient check of a complete (tiny) network: the strongest
// correctness statement about the backprop stack, covering layer composition
// (conv -> BN -> relu -> pool -> flatten -> dense -> loss).
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/pooling.h"
#include "test_util.h"

namespace nnr::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using testutil::close;
using testutil::deterministic_context;
using testutil::fill_random;

Model tiny_net(bool with_bn) {
  Model m;
  m.emplace<Conv2D>(2, 3, 3);
  if (with_bn) m.emplace<BatchNorm2D>(3);
  m.emplace<ReLU>();
  m.emplace<MaxPool2x2>();
  m.emplace<Flatten>();
  m.emplace<Dense>(3 * 2 * 2, 2);
  return m;
}

class EndToEndGradCheck : public ::testing::TestWithParam<bool> {};

TEST_P(EndToEndGradCheck, AllParameterGradientsMatchNumerical) {
  const bool with_bn = GetParam();
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = tiny_net(with_bn);
  rng::Generator init(11);
  m.init_weights(init);

  Tensor x(Shape{3, 2, 4, 4});
  fill_random(x, 12);
  std::vector<std::int32_t> labels = {0, 1, 0};

  auto scalar = [&]() -> double {
    const Tensor logits = m.forward(x, ctx);
    return softmax_cross_entropy(logits, labels, ctx).loss;
  };

  m.zero_grads();
  const Tensor logits = m.forward(x, ctx);
  const LossResult loss = softmax_cross_entropy(logits, labels, ctx);
  (void)m.backward(loss.grad_logits, ctx);

  // Max-pool argmax ties and ReLU kinks flip under finite-difference
  // perturbation, so a handful of elements may disagree; require a large
  // majority to match tightly and no element to be wildly off.
  std::size_t checked = 0;
  std::size_t matching = 0;
  for (Param* p : m.params()) {
    const auto numeric =
        testutil::numerical_gradient(p->value.data(), scalar, 1e-2F);
    for (std::size_t i = 0; i < numeric.size(); ++i) {
      ++checked;
      if (close(p->grad.at(static_cast<std::int64_t>(i)), numeric[i], 8e-2,
                2e-3)) {
        ++matching;
      }
      EXPECT_TRUE(close(p->grad.at(static_cast<std::int64_t>(i)), numeric[i],
                        1.0, 0.05))
          << p->name << "[" << i << "] wildly off: analytic "
          << p->grad.at(static_cast<std::int64_t>(i)) << " numeric "
          << numeric[i];
    }
  }
  EXPECT_GT(checked, 50u);  // sanity: the sweep actually covered parameters
  EXPECT_GE(matching, checked * 9 / 10)
      << matching << "/" << checked << " gradients matched";
}

INSTANTIATE_TEST_SUITE_P(WithAndWithoutBn, EndToEndGradCheck,
                         ::testing::Values(false, true));

TEST(EndToEndGradCheck, InputGradientMatchesNumerical) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Model m = tiny_net(false);
  rng::Generator init(13);
  m.init_weights(init);

  Tensor x(Shape{2, 2, 4, 4});
  fill_random(x, 14);
  std::vector<std::int32_t> labels = {1, 0};

  auto scalar = [&]() -> double {
    const Tensor logits = m.forward(x, ctx);
    return softmax_cross_entropy(logits, labels, ctx).loss;
  };

  m.zero_grads();
  const Tensor logits = m.forward(x, ctx);
  const LossResult loss = softmax_cross_entropy(logits, labels, ctx);
  const Tensor dx = m.backward(loss.grad_logits, ctx);

  // Max-pool argmax ties flip under finite differences; check a large
  // majority rather than every element.
  const auto numeric = testutil::numerical_gradient(x.data(), scalar, 1e-2F);
  std::size_t matching = 0;
  for (std::size_t i = 0; i < numeric.size(); ++i) {
    if (close(dx.at(static_cast<std::int64_t>(i)), numeric[i], 8e-2, 2e-3)) {
      ++matching;
    }
  }
  EXPECT_GT(matching, numeric.size() * 9 / 10);
}

}  // namespace
}  // namespace nnr::nn
