// Bootstrap confidence intervals: determinism, degenerate inputs, coverage.
#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/running_stat.h"
#include "rng/generator.h"

namespace nnr::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
  rng::Generator gen(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = gen.normal(static_cast<float>(mean),
                                      static_cast<float>(sd));
  return xs;
}

TEST(BootstrapMean, PointEstimateIsSampleMean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  rng::Generator gen(7);
  const BootstrapCI ci = bootstrap_mean_ci(xs, 500, 0.95, gen);
  EXPECT_DOUBLE_EQ(ci.point, 2.5);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(BootstrapMean, DeterministicGivenSeed) {
  const std::vector<double> xs = normal_sample(20, 5.0, 1.0, 11);
  rng::Generator a(42);
  rng::Generator b(42);
  const BootstrapCI ca = bootstrap_mean_ci(xs, 300, 0.95, a);
  const BootstrapCI cb = bootstrap_mean_ci(xs, 300, 0.95, b);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(BootstrapMean, ConstantSampleHasZeroWidth) {
  const std::vector<double> xs(10, 3.25);
  rng::Generator gen(1);
  const BootstrapCI ci = bootstrap_mean_ci(xs, 200, 0.95, gen);
  EXPECT_DOUBLE_EQ(ci.lo, 3.25);
  EXPECT_DOUBLE_EQ(ci.hi, 3.25);
  EXPECT_DOUBLE_EQ(ci.width(), 0.0);
}

TEST(BootstrapMean, WiderConfidenceGivesWiderInterval) {
  const std::vector<double> xs = normal_sample(30, 0.0, 2.0, 5);
  rng::Generator g1(9);
  rng::Generator g2(9);
  const BootstrapCI c90 = bootstrap_mean_ci(xs, 2000, 0.90, g1);
  const BootstrapCI c99 = bootstrap_mean_ci(xs, 2000, 0.99, g2);
  EXPECT_LT(c90.width(), c99.width());
}

TEST(BootstrapMean, CoverageNearNominal) {
  // Property check: a 90% CI over repeated draws should contain the true
  // mean roughly 90% of the time. Small-sample percentile bootstrap
  // undercovers slightly, so accept [0.78, 0.98].
  constexpr int kTrials = 200;
  int covered = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::vector<double> xs =
        normal_sample(25, 10.0, 3.0, 1000 + static_cast<std::uint64_t>(t));
    rng::Generator gen(77 + static_cast<std::uint64_t>(t));
    const BootstrapCI ci = bootstrap_mean_ci(xs, 400, 0.90, gen);
    if (ci.contains(10.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_GE(coverage, 0.78);
  EXPECT_LE(coverage, 0.98);
}

TEST(BootstrapStddev, PointEstimateIsSampleStddev) {
  const std::vector<double> xs = {1.0, 3.0, 5.0, 7.0};
  metrics::RunningStat s;
  for (const double x : xs) s.add(x);
  rng::Generator gen(3);
  const BootstrapCI ci = bootstrap_stddev_ci(xs, 200, 0.95, gen);
  EXPECT_DOUBLE_EQ(ci.point, s.stddev());
}

TEST(BootstrapStddev, BracketsTrueStddevOnLargeSample) {
  const std::vector<double> xs = normal_sample(400, 0.0, 2.0, 21);
  rng::Generator gen(13);
  const BootstrapCI ci = bootstrap_stddev_ci(xs, 1000, 0.99, gen);
  EXPECT_TRUE(ci.contains(2.0)) << "[" << ci.lo << ", " << ci.hi << "]";
}

TEST(BootstrapPairwise, PointIsMeanOverPairs) {
  // 3 replicates, pair values 1, 2, 3 -> mean 2.
  std::vector<std::vector<double>> pair(3, std::vector<double>(3, 0.0));
  pair[0][1] = 1.0;
  pair[0][2] = 2.0;
  pair[1][2] = 3.0;
  rng::Generator gen(2);
  const BootstrapCI ci = bootstrap_pairwise_ci(pair, 300, 0.95, gen);
  EXPECT_DOUBLE_EQ(ci.point, 2.0);
  EXPECT_LE(ci.lo, ci.hi);
}

TEST(BootstrapPairwise, ConstantPairStatisticHasZeroWidth) {
  constexpr std::size_t kN = 6;
  std::vector<std::vector<double>> pair(kN, std::vector<double>(kN, 0.7));
  rng::Generator gen(4);
  const BootstrapCI ci = bootstrap_pairwise_ci(pair, 200, 0.95, gen);
  EXPECT_DOUBLE_EQ(ci.lo, 0.7);
  EXPECT_DOUBLE_EQ(ci.hi, 0.7);
}

TEST(BootstrapPairwise, BoundsBracketPoint) {
  constexpr std::size_t kN = 8;
  rng::Generator fill(99);
  std::vector<std::vector<double>> pair(kN, std::vector<double>(kN, 0.0));
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = i + 1; j < kN; ++j) pair[i][j] = fill.uniform();
  }
  rng::Generator gen(6);
  const BootstrapCI ci = bootstrap_pairwise_ci(pair, 800, 0.95, gen);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_GT(ci.width(), 0.0);
}

TEST(BootstrapGeneric, CustomStatisticMedian) {
  // The generic entry point accepts any statistic; sanity-check with the
  // median on a skewed sample: the CI must bracket the sample median, not
  // the mean.
  const std::vector<double> xs = {1, 1, 1, 1, 2, 2, 3, 50};
  const Statistic median = [](std::span<const double> s) {
    std::vector<double> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v.size() % 2 == 1
               ? v[v.size() / 2]
               : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
  };
  rng::Generator gen(17);
  const BootstrapCI ci = bootstrap_ci(xs, median, 500, 0.95, gen);
  EXPECT_DOUBLE_EQ(ci.point, 1.5);
  EXPECT_LT(ci.hi, 50.0);  // the outlier must not drag the upper bound
}

TEST(Jackknife, MatchesClassicalStderrOfMean) {
  // For the mean, jackknife SE == s / sqrt(n) exactly.
  const std::vector<double> xs = normal_sample(50, 1.0, 4.0, 31);
  metrics::RunningStat s;
  for (const double x : xs) s.add(x);
  const double classical = s.stddev() / std::sqrt(50.0);
  EXPECT_NEAR(jackknife_mean_stderr(xs), classical, 1e-10);
}

TEST(Jackknife, ZeroForConstantSample) {
  const std::vector<double> xs(12, 2.0);
  EXPECT_NEAR(jackknife_mean_stderr(xs), 0.0, 1e-12);
}

}  // namespace
}  // namespace nnr::stats
