// Hypothesis tests: anchors, invariances, and behaviour on separated /
// identical samples.
#include "stats/hypothesis.h"

#include <vector>

#include <gtest/gtest.h>

#include "rng/generator.h"

namespace nnr::stats {
namespace {

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
  rng::Generator gen(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = gen.normal(static_cast<float>(mean),
                                      static_cast<float>(sd));
  return xs;
}

TEST(WelchT, IdenticalSamplesGivePOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const TestResult r = welch_t_test(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WelchT, ClearlySeparatedSamplesReject) {
  const std::vector<double> a = normal_sample(20, 0.0, 1.0, 1);
  const std::vector<double> b = normal_sample(20, 5.0, 1.0, 2);
  const TestResult r = welch_t_test(a, b);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(WelchT, SymmetricInArguments) {
  const std::vector<double> a = normal_sample(10, 0.0, 1.0, 3);
  const std::vector<double> b = normal_sample(14, 0.4, 2.0, 4);
  const TestResult r1 = welch_t_test(a, b);
  const TestResult r2 = welch_t_test(b, a);
  EXPECT_DOUBLE_EQ(r1.p_value, r2.p_value);
  EXPECT_DOUBLE_EQ(r1.statistic, -r2.statistic);
  EXPECT_DOUBLE_EQ(r1.df, r2.df);
}

TEST(WelchT, HandComputedAnchor) {
  // a = {1,2,3,4,5}: mean 3, var 2.5. b = {2,4,6,8,10}: mean 6, var 10.
  // t = (3-6)/sqrt(2.5/5 + 10/5) = -3/sqrt(2.5) = -1.897366596...
  // df = 2.5^2 / (0.5^2/4 + 2^2/4) = 6.25/1.0625 = 5.882352941...
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  const TestResult r = welch_t_test(a, b);
  EXPECT_NEAR(r.statistic, -1.8973665961010275, 1e-12);
  EXPECT_NEAR(r.df, 5.882352941176471, 1e-12);
  // scipy.stats.ttest_ind(equal_var=False) gives p = 0.10796...; anchor
  // loosely to guard the formula wiring rather than the last digit.
  EXPECT_NEAR(r.p_value, 0.108, 2e-3);
}

TEST(WelchT, DegenerateConstantSamples) {
  const std::vector<double> same = {2.0, 2.0, 2.0};
  const std::vector<double> other = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(welch_t_test(same, same).p_value, 1.0);
  EXPECT_DOUBLE_EQ(welch_t_test(same, other).p_value, 0.0);
}

TEST(WelchT, WelchDfBetweenMinAndSum) {
  const std::vector<double> a = normal_sample(8, 0.0, 1.0, 5);
  const std::vector<double> b = normal_sample(12, 0.0, 3.0, 6);
  const TestResult r = welch_t_test(a, b);
  EXPECT_GE(r.df, 7.0 - 1e-9);          // >= min(na, nb) - 1
  EXPECT_LE(r.df, 18.0 + 1e-9);         // <= na + nb - 2
}

TEST(BrownForsythe, EqualVarianceGroupsDoNotReject) {
  // Any single draw can be a false positive at the nominal rate; aggregate
  // over several independent draws and require that rejections stay rare.
  int rejections = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    const std::vector<std::vector<double>> groups = {
        normal_sample(30, 0.0, 1.0, 100 + 3 * s),
        normal_sample(30, 5.0, 1.0, 101 + 3 * s),  // mean shift only
        normal_sample(30, -2.0, 1.0, 102 + 3 * s),
    };
    if (brown_forsythe_test(groups).p_value < 0.05) ++rejections;
  }
  EXPECT_LE(rejections, 2);
}

TEST(BrownForsythe, UnequalVariancesReject) {
  const std::vector<std::vector<double>> groups = {
      normal_sample(40, 0.0, 0.2, 10),
      normal_sample(40, 0.0, 3.0, 11),
  };
  const TestResult r = brown_forsythe_test(groups);
  EXPECT_LT(r.p_value, 1e-4);
}

TEST(BrownForsythe, IdenticalConstantGroups) {
  const std::vector<std::vector<double>> groups = {
      {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}};
  EXPECT_DOUBLE_EQ(brown_forsythe_test(groups).p_value, 1.0);
}

TEST(BrownForsythe, ScaleInvarianceOfDecision) {
  // Rescaling every observation by the same factor leaves F unchanged.
  const std::vector<std::vector<double>> g1 = {
      normal_sample(15, 0.0, 1.0, 12), normal_sample(15, 0.0, 2.0, 13)};
  std::vector<std::vector<double>> g2 = g1;
  for (auto& g : g2) {
    for (double& x : g) x *= 10.0;
  }
  EXPECT_NEAR(brown_forsythe_test(g1).statistic,
              brown_forsythe_test(g2).statistic, 1e-9);
}

TEST(PermutationTest, IdenticalSamplesDoNotReject) {
  const std::vector<double> a = normal_sample(12, 1.0, 1.0, 14);
  rng::Generator gen(20);
  const TestResult r = permutation_mean_test(a, a, 500, gen);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(PermutationTest, SeparatedSamplesReject) {
  const std::vector<double> a = normal_sample(12, 0.0, 0.5, 15);
  const std::vector<double> b = normal_sample(12, 4.0, 0.5, 16);
  rng::Generator gen(21);
  const TestResult r = permutation_mean_test(a, b, 999, gen);
  // Smallest attainable p with the add-one correction is 1/1000.
  EXPECT_NEAR(r.p_value, 1.0 / 1000.0, 5e-3);
}

TEST(PermutationTest, PValueBoundedBelowByAddOne) {
  const std::vector<double> a = {0.0, 0.0, 0.0};
  const std::vector<double> b = {100.0, 100.0, 100.0};
  rng::Generator gen(22);
  const TestResult r = permutation_mean_test(a, b, 99, gen);
  EXPECT_GE(r.p_value, 1.0 / 100.0 - 1e-12);
}

TEST(PermutationTest, AgreesWithWelchOnModerateEffect) {
  // Both tests should land on the same side of alpha = 0.05 for a clear
  // medium effect with comfortable n.
  const std::vector<double> a = normal_sample(25, 0.0, 1.0, 17);
  const std::vector<double> b = normal_sample(25, 1.2, 1.0, 18);
  rng::Generator gen(23);
  const TestResult perm = permutation_mean_test(a, b, 2000, gen);
  const TestResult welch = welch_t_test(a, b);
  EXPECT_LT(perm.p_value, 0.05);
  EXPECT_LT(welch.p_value, 0.05);
}

TEST(SignTest, BalancedIsCertain) {
  EXPECT_NEAR(sign_test(4, 8).p_value, 1.0, 1e-12);
}

TEST(SignTest, UnanimousIsExtreme) {
  EXPECT_NEAR(sign_test(10, 10).p_value, 2.0 / 1024.0, 1e-12);
}

}  // namespace
}  // namespace nnr::stats
