// Two-way ANOVA decomposition: partition identity, pure-effect matrices,
// additivity, and randomized property sweeps.
#include "stats/anova.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/generator.h"
#include "stats/special.h"

namespace nnr::stats {
namespace {

using Matrix = std::vector<std::vector<double>>;

TEST(TwoWayAnova, ConstantMatrixIsAllZero) {
  const Matrix y(3, std::vector<double>(4, 2.5));
  const TwoWayAnova a = two_way_anova(y);
  EXPECT_DOUBLE_EQ(a.ss_total, 0.0);
  EXPECT_DOUBLE_EQ(a.rows_share(), 0.0);
  EXPECT_DOUBLE_EQ(a.cols_share(), 0.0);
  EXPECT_DOUBLE_EQ(a.residual_share(), 0.0);
  EXPECT_DOUBLE_EQ(a.grand_mean, 2.5);
}

TEST(TwoWayAnova, PureRowEffect) {
  // y[i][j] = i: all variance is the row main effect.
  Matrix y(4, std::vector<double>(3, 0.0));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) y[i][j] = static_cast<double>(i);
  }
  const TwoWayAnova a = two_way_anova(y);
  EXPECT_NEAR(a.rows_share(), 1.0, 1e-12);
  EXPECT_NEAR(a.cols_share(), 0.0, 1e-12);
  EXPECT_NEAR(a.residual_share(), 0.0, 1e-12);
}

TEST(TwoWayAnova, PureColumnEffect) {
  Matrix y(3, std::vector<double>(5, 0.0));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) y[i][j] = 10.0 * static_cast<double>(j);
  }
  const TwoWayAnova a = two_way_anova(y);
  EXPECT_NEAR(a.cols_share(), 1.0, 1e-12);
  EXPECT_NEAR(a.rows_share(), 0.0, 1e-12);
}

TEST(TwoWayAnova, AdditiveEffectsHaveZeroResidual) {
  // y[i][j] = r_i + c_j: no interaction, residual share must vanish.
  const std::vector<double> r = {0.0, 1.5, -2.0};
  const std::vector<double> c = {3.0, 0.5, 7.0, -1.0};
  Matrix y(r.size(), std::vector<double>(c.size(), 0.0));
  for (std::size_t i = 0; i < r.size(); ++i) {
    for (std::size_t j = 0; j < c.size(); ++j) y[i][j] = r[i] + c[j];
  }
  const TwoWayAnova a = two_way_anova(y);
  EXPECT_NEAR(a.residual_share(), 0.0, 1e-12);
  EXPECT_NEAR(a.rows_share() + a.cols_share(), 1.0, 1e-12);
}

TEST(TwoWayAnova, PureInteraction) {
  // XOR-like pattern: row and column means are all equal, every bit of
  // variance is interaction.
  const Matrix y = {{1.0, -1.0}, {-1.0, 1.0}};
  const TwoWayAnova a = two_way_anova(y);
  EXPECT_NEAR(a.residual_share(), 1.0, 1e-12);
  EXPECT_NEAR(a.rows_share(), 0.0, 1e-12);
  EXPECT_NEAR(a.cols_share(), 0.0, 1e-12);
}

TEST(TwoWayAnova, DegreesOfFreedom) {
  const Matrix y(5, std::vector<double>(7, 0.0));
  const TwoWayAnova a = two_way_anova(y);
  EXPECT_DOUBLE_EQ(a.df_rows, 4.0);
  EXPECT_DOUBLE_EQ(a.df_cols, 6.0);
  EXPECT_DOUBLE_EQ(a.df_residual, 24.0);
}

TEST(TwoWayAnova, FStatisticAgainstKnownAnchor) {
  // Textbook-style check: strong row effect over weak noise must produce a
  // significant F for rows and a non-significant F for columns.
  rng::Generator gen(5);
  Matrix y(4, std::vector<double>(6, 0.0));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      y[i][j] = 5.0 * static_cast<double>(i) + 0.1 * gen.normal();
    }
  }
  const TwoWayAnova a = two_way_anova(y);
  EXPECT_LT(f_upper_tail_p(a.f_rows(), a.df_rows, a.df_residual), 1e-6);
  EXPECT_GT(f_upper_tail_p(a.f_cols(), a.df_cols, a.df_residual), 0.05);
}

class AnovaPartitionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnovaPartitionSweep, SumsOfSquaresPartitionTotal) {
  rng::Generator gen(GetParam());
  const std::size_t rows = 2 + gen.uniform_int(6);
  const std::size_t cols = 2 + gen.uniform_int(6);
  Matrix y(rows, std::vector<double>(cols, 0.0));
  for (auto& row : y) {
    for (double& v : row) v = gen.normal(0.0F, 3.0F);
  }
  const TwoWayAnova a = two_way_anova(y);
  EXPECT_NEAR(a.ss_rows + a.ss_cols + a.ss_residual, a.ss_total,
              1e-9 * (1.0 + a.ss_total));
  EXPECT_GE(a.ss_rows, 0.0);
  EXPECT_GE(a.ss_cols, 0.0);
  EXPECT_GE(a.ss_residual, 0.0);
  EXPECT_NEAR(a.rows_share() + a.cols_share() + a.residual_share(), 1.0,
              1e-9);
}

TEST_P(AnovaPartitionSweep, ShiftInvariance) {
  rng::Generator gen(GetParam() + 1000);
  Matrix y(3, std::vector<double>(4, 0.0));
  for (auto& row : y) {
    for (double& v : row) v = gen.normal();
  }
  Matrix shifted = y;
  for (auto& row : shifted) {
    for (double& v : row) v += 123.456;
  }
  const TwoWayAnova a = two_way_anova(y);
  const TwoWayAnova b = two_way_anova(shifted);
  EXPECT_NEAR(a.ss_total, b.ss_total, 1e-7 * (1.0 + a.ss_total));
  EXPECT_NEAR(a.ss_rows, b.ss_rows, 1e-7 * (1.0 + a.ss_rows));
  EXPECT_NEAR(a.grand_mean + 123.456, b.grand_mean, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnovaPartitionSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace nnr::stats
