// Numerical accuracy of the special functions against closed-form anchors.
#include "stats/special.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nnr::stats {
namespace {

TEST(LogGamma, MatchesFactorials) {
  // Gamma(n) = (n-1)! for integer n.
  double factorial = 1.0;
  for (int n = 1; n <= 15; ++n) {
    EXPECT_NEAR(log_gamma(n), std::log(factorial), 1e-10) << "n=" << n;
    factorial *= n;
  }
}

TEST(LogGamma, HalfIntegerAnchor) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  // Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(log_gamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-12);
}

TEST(LogGamma, RecurrenceProperty) {
  // log Gamma(x+1) = log Gamma(x) + log x across the argument range the
  // tests exercise (df up to thousands).
  for (const double x : {0.3, 0.9, 1.7, 5.0, 42.5, 800.0, 5000.0}) {
    EXPECT_NEAR(log_gamma(x + 1.0), log_gamma(x) + std::log(x),
                1e-9 * std::fabs(log_gamma(x + 1.0)) + 1e-10)
        << "x=" << x;
  }
}

TEST(IncompleteBeta, Endpoints) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricPointIsHalf) {
  // I_{1/2}(a, a) = 1/2 for any a.
  for (const double a : {0.5, 1.0, 2.0, 7.5, 30.0}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-12) << "a=" << a;
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x (Beta(1,1) is uniform).
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, ClosedFormA1) {
  // I_x(1, b) = 1 - (1-x)^b.
  for (const double b : {1.0, 2.0, 5.0}) {
    for (double x = 0.1; x < 1.0; x += 0.2) {
      EXPECT_NEAR(incomplete_beta(1.0, b, x), 1.0 - std::pow(1.0 - x, b),
                  1e-12);
    }
  }
}

TEST(IncompleteBeta, ReflectionSymmetry) {
  for (const double a : {0.7, 2.0, 11.0}) {
    for (const double b : {1.3, 4.0, 9.0}) {
      for (double x = 0.1; x < 1.0; x += 0.2) {
        EXPECT_NEAR(incomplete_beta(a, b, x),
                    1.0 - incomplete_beta(b, a, 1.0 - x), 1e-11);
      }
    }
  }
}

TEST(IncompleteBeta, MonotoneInX) {
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double v = incomplete_beta(3.0, 5.0, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(NormalCdf, Anchors) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(StudentT, LargeDfApproachesNormal) {
  // For huge df the t distribution is the standard normal; the two-sided
  // 1.96 tail must be ~0.05.
  EXPECT_NEAR(student_t_two_sided_p(1.959963984540054, 1e7), 0.05, 1e-4);
}

TEST(StudentT, KnownSmallDfQuantiles) {
  // t_{0.975, 10} = 2.228138852; two-sided p at that t must be 0.05.
  EXPECT_NEAR(student_t_two_sided_p(2.228138852, 10.0), 0.05, 1e-6);
  // t_{0.975, 4} = 2.776445105.
  EXPECT_NEAR(student_t_two_sided_p(2.776445105, 4.0), 0.05, 1e-6);
  // df = 1 is the Cauchy distribution: P(|T| >= 1) = 0.5.
  EXPECT_NEAR(student_t_two_sided_p(1.0, 1.0), 0.5, 1e-10);
}

TEST(StudentT, ZeroStatisticIsCertain) {
  EXPECT_DOUBLE_EQ(student_t_two_sided_p(0.0, 9.0), 1.0);
}

TEST(StudentT, SymmetricInSign) {
  for (const double t : {0.5, 1.3, 2.9}) {
    EXPECT_DOUBLE_EQ(student_t_two_sided_p(t, 7.0),
                     student_t_two_sided_p(-t, 7.0));
  }
}

TEST(FDistribution, MedianOfF11) {
  // F(1,1) is the ratio of two chi^2_1; P(F >= 1) = 0.5 by symmetry.
  EXPECT_NEAR(f_upper_tail_p(1.0, 1.0, 1.0), 0.5, 1e-10);
}

TEST(FDistribution, KnownCriticalValue) {
  // F_{0.95}(4, 10) = 3.47805; upper tail at the critical value is 0.05.
  EXPECT_NEAR(f_upper_tail_p(3.47805, 4.0, 10.0), 0.05, 1e-4);
}

TEST(FDistribution, Extremes) {
  EXPECT_DOUBLE_EQ(f_upper_tail_p(0.0, 3.0, 3.0), 1.0);
  EXPECT_NEAR(f_upper_tail_p(1e12, 3.0, 3.0), 0.0, 1e-6);
}

TEST(BinomialTwoSided, BalancedOutcomeIsCertain) {
  EXPECT_NEAR(binomial_two_sided_p(5, 10), 1.0, 1e-12);
}

TEST(BinomialTwoSided, ExtremeOutcome) {
  // P = 2 * (1/2)^10 for 10/10 successes.
  EXPECT_NEAR(binomial_two_sided_p(10, 10), 2.0 / 1024.0, 1e-12);
  EXPECT_NEAR(binomial_two_sided_p(0, 10), 2.0 / 1024.0, 1e-12);
}

TEST(BinomialTwoSided, SymmetricInSuccesses) {
  for (int k = 0; k <= 12; ++k) {
    EXPECT_NEAR(binomial_two_sided_p(k, 12), binomial_two_sided_p(12 - k, 12),
                1e-12);
  }
}

TEST(BinomialTwoSided, HandComputedCase) {
  // n = 6: pmf = (1, 6, 15, 20, 15, 6, 1)/64. Observed k=1 (pmf 6/64):
  // outcomes with pmf <= 6/64 are k in {0, 1, 5, 6} -> (1+6+6+1)/64.
  EXPECT_NEAR(binomial_two_sided_p(1, 6), 14.0 / 64.0, 1e-12);
}

TEST(BinomialTwoSided, DegenerateTrials) {
  EXPECT_DOUBLE_EQ(binomial_two_sided_p(0, 0), 1.0);
}

}  // namespace
}  // namespace nnr::stats
