#!/usr/bin/env bash
# Chaos conformance at the process level: the fleet study of
# fleet_queue_test.sh re-run with NNR_FAULT_SPEC armed in every process —
# daemon, coordinator, and both workers all inject seeded drop / delay /
# corrupt / reset faults into every socket they own. The contract:
#
#   1. a fault-free local run produces the ground-truth tables;
#   2. under the fault plan, the coordinator + 2 workers still complete
#      the wave: daemon tally trained == grid, failed == 0 (faults cost
#      retries, never cells — and never double-trains);
#   3. the fleet tables are byte-identical to the fault-free reference
#      (faults cost time, never bytes);
#   4. SIGTERM stops the daemon gracefully (drain + queue persist).
#
# The spec seed makes the whole storm replayable: a red run IS the
# reproduction recipe.
#
# Usage: chaos_fleet_test.sh /path/to/nnr_run /path/to/nnr_cached [SPEC]
set -euo pipefail

NNR_RUN="$1"
NNR_CACHED="$2"
SPEC="${3:-drop=0.02,delay_ms=5:0.05,corrupt=0.02,reset=0.01,seed=7}"
WORK="$(mktemp -d)"
DAEMON_PID=""
COORD_PID=""
WORKER_A=""
WORKER_B=""
cleanup() {
  # Kill the clients first and hard: a worker orphaned by a FAIL exit
  # polls the (now dead) daemon forever and would hold our pipes open.
  for pid in "$COORD_PID" "$WORKER_A" "$WORKER_B"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

export NNR_QUICK=1
unset NNR_CACHE_DIR NNR_CACHE_URL NNR_CACHE_BUDGET NNR_THREADS \
      NNR_FAULT_SPEC 2>/dev/null || true

TOTAL=12  # fig2 under NNR_QUICK: 2 tasks x 3 variants x 2 replicates

# 1. Ground truth: plain local run — no cache, no faults.
"$NNR_RUN" --study fig2 --out "$WORK/out-local" 2> "$WORK/local.err"

# Everything below runs under the fault plan. Client timeouts/backoffs are
# tightened so each injected fault costs tens of milliseconds, not the
# multi-second production defaults.
export NNR_FAULT_SPEC="$SPEC"
export NNR_CACHE_IO_TIMEOUT_MS=500
export NNR_CACHE_BACKOFF_MS=50
export NNR_CACHE_BACKOFF_MAX_MS=400

# 2. The daemon — faults armed on its sockets too.
"$NNR_CACHED" --dir "$WORK/cache" --port 0 > "$WORK/daemon.out" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  grep -q 'listening on' "$WORK/daemon.out" 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || { echo "FAIL: daemon died at startup";
    cat "$WORK/daemon.out"; exit 1; }
  sleep 0.05
done
PORT="$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/daemon.out")"
[ -n "$PORT" ] || { echo "FAIL: could not parse daemon port"; exit 1; }
URL="tcp://127.0.0.1:$PORT"

grep -q '\[fault\] injector armed' "$WORK/daemon.out" || {
  echo "FAIL: daemon did not arm the fault injector from NNR_FAULT_SPEC"
  cat "$WORK/daemon.out"; exit 1; }

# 3. Coordinator + two workers, all under the storm.
"$NNR_RUN" --submit fig2 --cache-url "$URL" --out "$WORK/out-fleet" \
    2> "$WORK/coord.err" &
COORD_PID=$!
"$NNR_RUN" --worker --cache-url "$URL" 2> "$WORK/worker-a.err" &
WORKER_A=$!
"$NNR_RUN" --worker --cache-url "$URL" 2> "$WORK/worker-b.err" &
WORKER_B=$!

wait "$COORD_PID" || { echo "FAIL: coordinator exited non-zero";
  cat "$WORK/coord.err"; exit 1; }
COORD_PID=""
wait "$WORKER_A" || { echo "FAIL: worker A exited non-zero";
  cat "$WORK/worker-a.err"; exit 1; }
WORKER_A=""
wait "$WORKER_B" || { echo "FAIL: worker B exited non-zero";
  cat "$WORK/worker-b.err"; exit 1; }
WORKER_B=""

# 4a. Exactly-once under chaos: every cell trained once fleet-wide, none
#     failed, none lost. (No warm-replay or per-worker-sum assertions here:
#     a faulty cache load during the coordinator's replay may legitimately
#     retrain a cell locally, and a lease lost to an injected reset may
#     legitimately double-train one — the daemon tally and the tables are
#     the invariants faults cannot be allowed to move.)
FLEET_LINE="$(grep "\[fleet\] $TOTAL/$TOTAL cells" "$WORK/coord.err" | tail -1)"
[ -n "$FLEET_LINE" ] || { echo "FAIL: no final [fleet] $TOTAL/$TOTAL line";
  cat "$WORK/coord.err"; exit 1; }
echo "$FLEET_LINE" | grep -q "trained=$TOTAL" || {
  echo "FAIL: fleet tally is not trained=$TOTAL under spec '$SPEC':"
  echo "$FLEET_LINE"; exit 1; }
echo "$FLEET_LINE" | grep -q 'failed=0' || {
  echo "FAIL: fleet saw failures under spec '$SPEC': $FLEET_LINE"; exit 1; }

# 4b. Byte-identical tables: the storm cost retries, never bytes.
for ext in txt csv json; do
  cmp "$WORK/out-local/study_fig2.$ext" "$WORK/out-fleet/study_fig2.$ext" || {
    echo "FAIL: chaos study_fig2.$ext differs from the fault-free reference"
    exit 1
  }
done

# 4c. SIGTERM is the graceful path: drain, release leases, persist queue.
kill -TERM "$DAEMON_PID"
for _ in $(seq 1 100); do
  kill -0 "$DAEMON_PID" 2>/dev/null || break
  sleep 0.05
done
kill -0 "$DAEMON_PID" 2>/dev/null && {
  echo "FAIL: daemon did not exit within 5s of SIGTERM"; exit 1; }
DAEMON_PID=""
grep -q 'graceful stop' "$WORK/daemon.out" || {
  echo "FAIL: daemon exited without the graceful-stop drain";
  cat "$WORK/daemon.out"; exit 1; }

echo "chaos-fleet OK: spec='$SPEC' trained=$TOTAL tables identical" \
     "(port $PORT)"
