#!/usr/bin/env bash
# The sharded cache tier at the process level: three nnr_cached daemons
# (each owning its own directory), one coordinator and two workers driving
# a fleet study through the multi-shard --cache-url, with NNR_FAULT_SPEC
# armed in every process AND one non-queue shard SIGKILLed mid-study and
# restarted on the same directory + port. The contract:
#
#   1. a fault-free local run produces the ground-truth tables;
#   2. the wave still completes exactly-once: every cell settles
#      (trained + served == grid), none fails — the killed shard costs PUT
#      retries and degraded loads on its own key range only, never cells.
#      (trained alone is NOT asserted == grid: under a sharded tier REPORT
#      is the settlement path for non-queue-shard keys, and a fault that
#      drops the queue connection between FETCH and REPORT releases the
#      lease, requeues the item, and lets a peer settle the already-stored
#      cell as served — an accounting shift, not lost or repeated work);
#   3. the fleet tables are byte-identical to the fault-free reference;
#   4. a warm replay through the same multi-shard map trains 0 cells —
#      every entry is served by its owner shard.
#
# Usage: sharded_cache_test.sh /path/to/nnr_run /path/to/nnr_cached [SPEC]
set -euo pipefail

NNR_RUN="$1"
NNR_CACHED="$2"
SPEC="${3:-drop=0.02,delay_ms=5:0.05,corrupt=0.02,reset=0.01,seed=11}"
WORK="$(mktemp -d)"
D0_PID=""
D1_PID=""
D2_PID=""
COORD_PID=""
WORKER_A=""
WORKER_B=""
cleanup() {
  for pid in "$COORD_PID" "$WORKER_A" "$WORKER_B"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  for pid in "$D0_PID" "$D1_PID" "$D2_PID"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

export NNR_QUICK=1
unset NNR_CACHE_DIR NNR_CACHE_URL NNR_CACHE_BUDGET NNR_THREADS \
      NNR_FAULT_SPEC 2>/dev/null || true

TOTAL=12  # fig2 under NNR_QUICK: 2 tasks x 3 variants x 2 replicates

# 1. Ground truth: plain local run — no cache, no faults.
"$NNR_RUN" --study fig2 --out "$WORK/out-local" 2> "$WORK/local.err"

# Everything below runs under the fault plan, with tight backoffs (so a
# fault or the killed shard costs tens of milliseconds per retry) and
# generous PUT retries (so the worker holding a result for the killed
# shard's key range rides out its restart instead of failing the cell).
export NNR_FAULT_SPEC="$SPEC"
export NNR_CACHE_IO_TIMEOUT_MS=500
export NNR_CACHE_BACKOFF_MS=50
export NNR_CACHE_BACKOFF_MAX_MS=400
export NNR_FLEET_STORE_RETRIES=60
export NNR_FLEET_STORE_RETRY_MS=100

# 2. Three shard daemons, each with its own directory. Shard 0 carries the
#    work queue; shard 2 is the one we murder mid-study.
start_daemon() {  # index port(0=ephemeral) -> prints nothing, sets PORT
  local index="$1" port="$2"
  : > "$WORK/daemon$index.out"
  "$NNR_CACHED" --dir "$WORK/shard$index" --port "$port" \
      >> "$WORK/daemon$index.out" 2>&1 &
  local pid=$!
  eval "D${index}_PID=$pid"
  for _ in $(seq 1 100); do
    grep -q 'listening on' "$WORK/daemon$index.out" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || { echo "FAIL: daemon $index died at startup"
      cat "$WORK/daemon$index.out"; exit 1; }
    sleep 0.05
  done
  PORT="$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' \
      "$WORK/daemon$index.out" | tail -1)"
  [ -n "$PORT" ] || { echo "FAIL: no port from daemon $index"; exit 1; }
}

start_daemon 0 0; PORT0="$PORT"
start_daemon 1 0; PORT1="$PORT"
start_daemon 2 0; PORT2="$PORT"
URLS="tcp://127.0.0.1:$PORT0,tcp://127.0.0.1:$PORT1,tcp://127.0.0.1:$PORT2"

# Failure forensics: daemon liveness, per-process logs, and what actually
# landed in each shard directory — a red run on a loaded CI machine must
# explain itself without a rerun.
dump_state() {
  for index in 0 1 2; do
    pid_var="D${index}_PID"
    pid="${!pid_var}"
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      echo "--- daemon $index (pid $pid): alive"
    else
      echo "--- daemon $index (pid ${pid:-?}): DEAD"
    fi
    tail -20 "$WORK/daemon$index.out" 2>/dev/null
    echo "--- shard$index entries:"
    find "$WORK/shard$index" -name '*.rr' 2>/dev/null | sort
  done
  for log in coord.err worker-a.err worker-b.err warm.err; do
    echo "--- $log:"; tail -30 "$WORK/$log" 2>/dev/null
  done
}

# 3. Coordinator + two workers, all on the full shard map.
"$NNR_RUN" --submit fig2 --cache-url "$URLS" --out "$WORK/out-fleet" \
    2> "$WORK/coord.err" &
COORD_PID=$!
"$NNR_RUN" --worker --cache-url "$URLS" 2> "$WORK/worker-a.err" &
WORKER_A=$!
"$NNR_RUN" --worker --cache-url "$URLS" 2> "$WORK/worker-b.err" &
WORKER_B=$!

# 4. Mid-study chaos: once training has started, SIGKILL the non-queue
#    shard 2 (no drain, no lease release, no goodbye), hold it down a
#    moment, then restart it on the same directory and port.
for _ in $(seq 1 200); do
  grep -q '\[worker\] trained' "$WORK/worker-a.err" "$WORK/worker-b.err" \
      2>/dev/null && break
  kill -0 "$COORD_PID" 2>/dev/null || break  # tiny grids can finish early
  sleep 0.05
done
if kill -0 "$D2_PID" 2>/dev/null; then
  kill -9 "$D2_PID" 2>/dev/null || true
  wait "$D2_PID" 2>/dev/null || true
  D2_PID=""
  sleep 0.5
  start_daemon 2 "$PORT2"
fi

wait "$COORD_PID" || { echo "FAIL: coordinator exited non-zero"
  cat "$WORK/coord.err"; exit 1; }
COORD_PID=""
wait "$WORKER_A" || { echo "FAIL: worker A exited non-zero"
  cat "$WORK/worker-a.err"; exit 1; }
WORKER_A=""
wait "$WORKER_B" || { echo "FAIL: worker B exited non-zero"
  cat "$WORK/worker-b.err"; exit 1; }
WORKER_B=""

# All three daemons must have survived the storm (shard 2 in its revived
# incarnation) — a dead daemon here would corrupt every later assertion.
for index in 0 1 2; do
  pid_var="D${index}_PID"
  if ! kill -0 "${!pid_var}" 2>/dev/null; then
    echo "FAIL: daemon $index died during the fleet phase"
    dump_state; exit 1
  fi
done

# 5a. Exactly-once across the sharded tier: every cell settled fleet-wide
#     (trained + served == grid), none failed — the killed shard moved no
#     cells. See the header for why trained alone may fall short of the
#     grid under the fault plan.
FLEET_LINE="$(grep "\[fleet\] $TOTAL/$TOTAL cells" "$WORK/coord.err" | tail -1)"
[ -n "$FLEET_LINE" ] || { echo "FAIL: no final [fleet] $TOTAL/$TOTAL line"
  cat "$WORK/coord.err"; exit 1; }
TRAINED="$(echo "$FLEET_LINE" | grep -o 'trained=[0-9]*' | cut -d= -f2)"
SERVED="$(echo "$FLEET_LINE" | grep -o 'served=[0-9]*' | cut -d= -f2)"
[ -n "$TRAINED" ] && [ -n "$SERVED" ] || {
  echo "FAIL: cannot parse tallies from: $FLEET_LINE"; exit 1; }
[ "$((TRAINED + SERVED))" -eq "$TOTAL" ] || {
  echo "FAIL: trained+served = $TRAINED+$SERVED != $TOTAL with a shard killed"
  echo "$FLEET_LINE"; exit 1; }
[ "$TRAINED" -ge 1 ] || {
  echo "FAIL: nothing trained — the wave was served from a stale cache?"
  echo "$FLEET_LINE"; exit 1; }
echo "$FLEET_LINE" | grep -q 'failed=0' || {
  echo "FAIL: fleet saw failures: $FLEET_LINE"; exit 1; }

# 5b. Byte-identical tables: sharding + chaos cost retries, never bytes.
for ext in txt csv json; do
  cmp "$WORK/out-local/study_fig2.$ext" "$WORK/out-fleet/study_fig2.$ext" || {
    echo "FAIL: sharded study_fig2.$ext differs from the reference"
    exit 1
  }
done

# 5c. Entries really are spread across shard directories (rendezvous
#     routing at work), and only there — no shard dir may be empty unless
#     the hash genuinely assigned it nothing (possible but rare for 12
#     keys over 3 shards; require at least 2 populated dirs).
POPULATED=0
for index in 0 1 2; do
  if find "$WORK/shard$index" -name '*.rr' | grep -q .; then
    POPULATED=$((POPULATED + 1))
  fi
done
[ "$POPULATED" -ge 2 ] || {
  echo "FAIL: entries are not spread across shards ($POPULATED populated)"
  exit 1; }

# 5d. Warm replay through the same multi-shard map: every cell is served
#     by its owner shard, nothing trains. That demands a genuinely quiet
#     wire, so first strip the chaos-phase environment (client timeouts
#     back to their defaults — a 500ms IO timeout on a loaded CI machine
#     can mark a healthy shard down by itself) AND gracefully restart all
#     three daemons fault-free: the running ones armed the fault plan at
#     startup, and one daemon-side drop during the replay would knock a
#     healthy shard into the client's down state and retrain its keys
#     (byte-identically, but trained would be nonzero). The restart also
#     proves every shard's entries persist across a full-tier bounce.
unset NNR_FAULT_SPEC NNR_CACHE_IO_TIMEOUT_MS NNR_CACHE_BACKOFF_MS \
      NNR_CACHE_BACKOFF_MAX_MS NNR_FLEET_STORE_RETRIES NNR_FLEET_STORE_RETRY_MS
for index in 0 1 2; do
  pid_var="D${index}_PID"
  kill "${!pid_var}" 2>/dev/null || true
  wait "${!pid_var}" 2>/dev/null || true
  eval "D${index}_PID="
done
start_daemon 0 "$PORT0"
start_daemon 1 "$PORT1"
start_daemon 2 "$PORT2"
"$NNR_RUN" --study fig2 --cache-url "$URLS" --out "$WORK/out-warm" \
    2> "$WORK/warm.err"
WARM_TRAINED="$(grep -o 'trained=[0-9]*' "$WORK/warm.err" | tail -1 | cut -d= -f2)"
[ "$WARM_TRAINED" = "0" ] || {
  echo "FAIL: warm sharded replay trained $WARM_TRAINED cells, expected 0"
  dump_state; exit 1; }
for ext in txt csv json; do
  cmp "$WORK/out-local/study_fig2.$ext" "$WORK/out-warm/study_fig2.$ext" || {
    echo "FAIL: warm study_fig2.$ext differs from the reference"; exit 1; }
done

echo "sharded-cache OK: spec='$SPEC' trained=$TRAINED served=$SERVED" \
     "shards=$POPULATED populated (ports $PORT0/$PORT1/$PORT2," \
     "shard 2 SIGKILLed + revived)"
