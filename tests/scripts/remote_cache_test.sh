#!/usr/bin/env bash
# Remote-cache contract at the process level — the network twin of the
# flock concurrency CI job:
#   1. one nnr_cached daemon fronts a fresh cache dir on an ephemeral port;
#   2. two concurrent `nnr_run --study fig2 --cache-url` clients must
#      partition the grid via remote leases (combined trained == total,
#      nothing duplicated, nothing corrupt) and emit byte-identical tables;
#   3. a warm rerun against the same daemon trains zero replicates, with
#      byte-identical tables again (a cached replicate IS the replicate).
#
# Usage: remote_cache_test.sh /path/to/nnr_run /path/to/nnr_cached
set -euo pipefail

NNR_RUN="$1"
NNR_CACHED="$2"
WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

export NNR_QUICK=1
unset NNR_CACHE_DIR NNR_CACHE_URL NNR_CACHE_BUDGET NNR_THREADS 2>/dev/null || true

last_trained() {
  grep -o 'trained=[0-9]*' "$1" | tail -1 | cut -d= -f2
}

# Start the daemon on an ephemeral port and parse the port from its
# startup line (the documented contract for scripts).
"$NNR_CACHED" --dir "$WORK/cache" --port 0 > "$WORK/daemon.out" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  grep -q 'listening on' "$WORK/daemon.out" 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || { echo "FAIL: daemon died at startup";
    cat "$WORK/daemon.out"; exit 1; }
  sleep 0.05
done
PORT="$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/daemon.out")"
[ -n "$PORT" ] || { echo "FAIL: could not parse daemon port"; exit 1; }
URL="tcp://127.0.0.1:$PORT"

# Two concurrent clients against the fresh remote cache.
"$NNR_RUN" --study fig2 --cache-url "$URL" --out "$WORK/out-a" 2> "$WORK/a.err" &
pid_a=$!
"$NNR_RUN" --study fig2 --cache-url "$URL" --out "$WORK/out-b" 2> "$WORK/b.err" &
pid_b=$!
wait "$pid_a"
wait "$pid_b"

ta="$(last_trained "$WORK/a.err")"
tb="$(last_trained "$WORK/b.err")"
total=12  # fig2 under NNR_QUICK: 2 tasks x 3 variants x 2 replicates
if [ "$((ta + tb))" -ne "$total" ]; then
  echo "FAIL: combined trained = $ta + $tb != $total (grid not partitioned)"
  cat "$WORK/a.err" "$WORK/b.err"
  exit 1
fi
grep -q 'corrupt=0' "$WORK/a.err" || { echo "FAIL: client A saw corruption"; exit 1; }
grep -q 'corrupt=0' "$WORK/b.err" || { echo "FAIL: client B saw corruption"; exit 1; }
for ext in txt csv json; do
  cmp "$WORK/out-a/study_fig2.$ext" "$WORK/out-b/study_fig2.$ext" || {
    echo "FAIL: concurrent clients emitted different study_fig2.$ext"
    exit 1
  }
done

# Warm rerun: everything must come from the daemon, nothing retrains.
"$NNR_RUN" --study fig2 --cache-url "$URL" --out "$WORK/out-warm" 2> "$WORK/warm.err"
warm="$(last_trained "$WORK/warm.err")"
if [ "$warm" -ne 0 ]; then
  echo "FAIL: warm remote rerun trained=$warm, expected 0"
  cat "$WORK/warm.err"
  exit 1
fi
grep -q 'misses=0' "$WORK/warm.err" || {
  echo "FAIL: warm remote rerun had misses"; cat "$WORK/warm.err"; exit 1; }
for ext in txt csv json; do
  cmp "$WORK/out-a/study_fig2.$ext" "$WORK/out-warm/study_fig2.$ext" || {
    echo "FAIL: warm table study_fig2.$ext differs"
    exit 1
  }
done

echo "remote-cache OK: trained a=$ta b=$tb warm=$warm (port $PORT)"
