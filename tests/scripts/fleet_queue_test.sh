#!/usr/bin/env bash
# Fleet work-queue contract at the process level:
#   1. a local reference run (no cache) produces the ground-truth tables;
#   2. an nnr_cached daemon fronts a fresh dir on an ephemeral port;
#   3. a coordinator submits fig2 to the daemon's queue and waits; workers
#      drain it — one worker is SIGKILLed mid-study and replacements join,
#      so the dead worker's leased cell must return to the queue;
#   4. the fleet trains every cell exactly once (daemon-side tally:
#      trained == grid, served == 0, failed == 0), the coordinator's warm
#      replay trains nothing, and its tables are byte-identical to the
#      local reference run.
#
# Usage: fleet_queue_test.sh /path/to/nnr_run /path/to/nnr_cached
set -euo pipefail

NNR_RUN="$1"
NNR_CACHED="$2"
WORK="$(mktemp -d)"
DAEMON_PID=""
KILL_ME_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "$KILL_ME_PID" ] && kill -9 "$KILL_ME_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

export NNR_QUICK=1
unset NNR_CACHE_DIR NNR_CACHE_URL NNR_CACHE_BUDGET NNR_THREADS 2>/dev/null || true

TOTAL=12  # fig2 under NNR_QUICK: 2 tasks x 3 variants x 2 replicates

last_trained() {
  grep -o 'trained=[0-9]*' "$1" | tail -1 | cut -d= -f2
}

# 1. Ground truth: a plain local run, no cache anywhere near it.
"$NNR_RUN" --study fig2 --out "$WORK/out-local" 2> "$WORK/local.err"

# 2. The daemon on an ephemeral port (parsed from its startup line).
"$NNR_CACHED" --dir "$WORK/cache" --port 0 > "$WORK/daemon.out" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  grep -q 'listening on' "$WORK/daemon.out" 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || { echo "FAIL: daemon died at startup";
    cat "$WORK/daemon.out"; exit 1; }
  sleep 0.05
done
PORT="$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/daemon.out")"
[ -n "$PORT" ] || { echo "FAIL: could not parse daemon port"; exit 1; }
URL="tcp://127.0.0.1:$PORT"

# 3. Coordinator submits and waits; the first worker starts alone so we can
#    kill it once it is demonstrably mid-study.
"$NNR_RUN" --submit fig2 --cache-url "$URL" --out "$WORK/out-fleet" \
    2> "$WORK/coord.err" &
COORD_PID=$!
"$NNR_RUN" --worker --cache-url "$URL" 2> "$WORK/worker-k.err" &
KILL_ME_PID=$!

# Wait until the doomed worker has trained at least one cell (so it holds a
# lease on its next one), then SIGKILL it — no REPORT, no clean release.
for _ in $(seq 1 200); do
  grep -q '\[worker\] trained' "$WORK/worker-k.err" 2>/dev/null && break
  kill -0 "$KILL_ME_PID" 2>/dev/null || { echo "FAIL: doomed worker exited early";
    cat "$WORK/worker-k.err"; exit 1; }
  sleep 0.1
done
grep -q '\[worker\] trained' "$WORK/worker-k.err" || {
  echo "FAIL: doomed worker never trained a cell"; cat "$WORK/worker-k.err"; exit 1; }
kill -9 "$KILL_ME_PID"
wait "$KILL_ME_PID" 2>/dev/null || true
KILL_ME_PID=""

# Two replacement workers join mid-study and drain the rest.
"$NNR_RUN" --worker --cache-url "$URL" 2> "$WORK/worker-a.err" &
WORKER_A=$!
"$NNR_RUN" --worker --cache-url "$URL" 2> "$WORK/worker-b.err" &
WORKER_B=$!

wait "$COORD_PID" || { echo "FAIL: coordinator exited non-zero";
  cat "$WORK/coord.err"; exit 1; }
wait "$WORKER_A" || { echo "FAIL: worker A exited non-zero";
  cat "$WORK/worker-a.err"; exit 1; }
wait "$WORKER_B" || { echo "FAIL: worker B exited non-zero";
  cat "$WORK/worker-b.err"; exit 1; }

# 4a. The daemon's final tally: every cell trained exactly once, fleet-wide.
FLEET_LINE="$(grep "\[fleet\] $TOTAL/$TOTAL cells" "$WORK/coord.err" | tail -1)"
[ -n "$FLEET_LINE" ] || { echo "FAIL: no final [fleet] $TOTAL/$TOTAL line";
  cat "$WORK/coord.err"; exit 1; }
echo "$FLEET_LINE" | grep -q "trained=$TOTAL" || {
  echo "FAIL: fleet tally is not trained=$TOTAL (a requeued cell was lost "
  echo "or double-counted): $FLEET_LINE"; exit 1; }
echo "$FLEET_LINE" | grep -q 'failed=0' || {
  echo "FAIL: fleet saw failures: $FLEET_LINE"; exit 1; }

# 4b. The coordinator's replay ran fully warm: zero local training.
WARM="$(last_trained "$WORK/coord.err")"
if [ "$WARM" -ne 0 ]; then
  echo "FAIL: coordinator's warm replay trained=$WARM, expected 0"
  cat "$WORK/coord.err"
  exit 1
fi

# 4c. Per-worker logs must corroborate exactly-once: the counts sum to the
#     grid — minus at most one line the SIGKILL can eat (killed after the
#     PUT settled the cell daemon-side but before the log line). A sum
#     ABOVE the grid means some cell trained twice.
A_TRAINED="$(last_trained "$WORK/worker-a.err")"
B_TRAINED="$(last_trained "$WORK/worker-b.err")"
K_TRAINED="$(grep -c '\[worker\] trained' "$WORK/worker-k.err" || true)"
SUM="$((A_TRAINED + B_TRAINED + K_TRAINED))"
if [ "$SUM" -gt "$TOTAL" ] || [ "$SUM" -lt "$((TOTAL - 1))" ]; then
  echo "FAIL: per-worker trained counts k=$K_TRAINED a=$A_TRAINED" \
       "b=$B_TRAINED sum to $SUM, expected $TOTAL (or $((TOTAL - 1)) when" \
       "the kill eats one log line)"
  cat "$WORK/worker-k.err" "$WORK/worker-a.err" "$WORK/worker-b.err"
  exit 1
fi

# 4d. Fleet tables byte-identical to the no-cache local reference.
for ext in txt csv json; do
  cmp "$WORK/out-local/study_fig2.$ext" "$WORK/out-fleet/study_fig2.$ext" || {
    echo "FAIL: fleet study_fig2.$ext differs from the local reference"
    exit 1
  }
done

echo "fleet-queue OK: killed-worker=$K_TRAINED a=$A_TRAINED b=$B_TRAINED" \
     "warm=$WARM (port $PORT)"
