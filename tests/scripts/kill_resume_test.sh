#!/usr/bin/env bash
# Kill-and-resume contract for the replicate cache, at the process level:
# a study killed mid-grid (SIGKILL — no cleanup runs, claims are released
# by the kernel, temp files may be orphaned) and rerun against the same
# cache trains exactly the replicates that were not yet durably stored,
# and the final tables are byte-identical to an uninterrupted run.
#
# Usage: kill_resume_test.sh /path/to/nnr_run
set -euo pipefail

NNR_RUN="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Quick scale, but enough replicates that the grid takes long enough to be
# killed mid-way on a fast machine.
export NNR_QUICK=1
export NNR_REPLICATES=6
unset NNR_CACHE_DIR NNR_CACHE_BUDGET NNR_THREADS 2>/dev/null || true

last_trained() {
  # The final "[study] trained=N" stderr line (progress lines also contain
  # trained=, so take the last occurrence).
  grep -o 'trained=[0-9]*' "$1" | tail -1 | cut -d= -f2
}

# Reference: one uninterrupted run with its own cache.
"$NNR_RUN" --study fig2 --cache-dir "$WORK/cache-ref" --out "$WORK/out-ref" \
  2> "$WORK/ref.err"
total="$(last_trained "$WORK/ref.err")"
[ "$total" -gt 0 ] || { echo "reference run trained nothing"; exit 1; }

# Interrupted run: SIGKILL once at least two replicates are durably cached.
mkdir -p "$WORK/cache"
"$NNR_RUN" --study fig2 --cache-dir "$WORK/cache" 2> "$WORK/killed.err" &
pid=$!
for _ in $(seq 1 1200); do
  n="$(find "$WORK/cache" -name '*.rr' | wc -l)"
  [ "$n" -ge 2 ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

present="$(find "$WORK/cache" -name '*.rr' | wc -l)"
if [ "$present" -ge "$total" ]; then
  echo "note: run finished before the kill landed ($present/$total cached);" \
       "resume still must train zero"
fi

# Resume against the killed run's cache: trains exactly the remaining
# replicates, reads the rest from disk, and matches the reference tables
# byte for byte.
"$NNR_RUN" --study fig2 --cache-dir "$WORK/cache" --out "$WORK/out-resume" \
  2> "$WORK/resume.err"
trained="$(last_trained "$WORK/resume.err")"
expected=$((total - present))
if [ "$trained" -ne "$expected" ]; then
  echo "FAIL: resume trained=$trained, expected $expected" \
       "(total=$total, cached-at-kill=$present)"
  cat "$WORK/resume.err"
  exit 1
fi
grep -q 'corrupt=0' "$WORK/resume.err" || {
  echo "FAIL: resume saw corrupt cache entries"; exit 1; }
for ext in txt csv json; do
  cmp "$WORK/out-ref/study_fig2.$ext" "$WORK/out-resume/study_fig2.$ext" || {
    echo "FAIL: resumed table study_fig2.$ext differs from reference"
    exit 1
  }
done

echo "kill-resume OK: total=$total cached-at-kill=$present resumed-trained=$trained"
