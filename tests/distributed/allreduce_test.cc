#include "distributed/allreduce.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/generator.h"

namespace nnr::distributed {
namespace {

std::vector<std::vector<float>> make_worker_buffers(std::size_t workers,
                                                    std::size_t n,
                                                    std::uint64_t seed) {
  rng::Generator gen(seed);
  std::vector<std::vector<float>> buffers(workers);
  for (auto& buffer : buffers) {
    buffer.resize(n);
    for (float& v : buffer) {
      v = gen.normal() * std::pow(10.0F, gen.uniform(-2.0F, 2.0F));
    }
  }
  return buffers;
}

std::vector<std::span<const float>> views(
    const std::vector<std::vector<float>>& buffers) {
  std::vector<std::span<const float>> spans;
  spans.reserve(buffers.size());
  for (const auto& buffer : buffers) spans.emplace_back(buffer);
  return spans;
}

TEST(AllReduce, SingleWorkerIsCopy) {
  const auto buffers = make_worker_buffers(1, 16, 1);
  std::vector<float> out(16);
  allreduce_sum(views(buffers), out, AllReduceAlgo::kTreeFixed, nullptr);
  EXPECT_EQ(out, buffers[0]);
}

TEST(AllReduce, RingOrderedMatchesSequentialSum) {
  const auto buffers = make_worker_buffers(4, 8, 2);
  std::vector<float> out(8);
  allreduce_sum(views(buffers), out, AllReduceAlgo::kRingOrdered, nullptr);
  for (std::size_t i = 0; i < 8; ++i) {
    float expected = buffers[0][i];
    for (std::size_t w = 1; w < 4; ++w) expected += buffers[w][i];
    EXPECT_EQ(out[i], expected);
  }
}

TEST(AllReduce, TreeFixedIsBitwiseReproducible) {
  const auto buffers = make_worker_buffers(7, 64, 3);
  std::vector<float> a(64);
  std::vector<float> b(64);
  allreduce_sum(views(buffers), a, AllReduceAlgo::kTreeFixed, nullptr);
  allreduce_sum(views(buffers), b, AllReduceAlgo::kTreeFixed, nullptr);
  EXPECT_EQ(a, b);
}

TEST(AllReduce, AllAlgosAgreeToRounding) {
  const auto buffers = make_worker_buffers(8, 256, 4);
  rng::Generator entropy(5);
  std::vector<double> exact(256, 0.0);
  for (const auto& buffer : buffers) {
    for (std::size_t i = 0; i < 256; ++i) exact[i] += buffer[i];
  }
  for (const AllReduceAlgo algo :
       {AllReduceAlgo::kTreeFixed, AllReduceAlgo::kRingOrdered,
        AllReduceAlgo::kRingShuffled}) {
    std::vector<float> out(256);
    allreduce_sum(views(buffers), out, algo, &entropy);
    for (std::size_t i = 0; i < 256; ++i) {
      EXPECT_NEAR(out[i], exact[i],
                  1e-3 * std::max(1.0, std::fabs(exact[i])));
    }
  }
}

TEST(AllReduce, ShuffledOrderDivergesAcrossLaunches) {
  // With enough workers and wide-dynamic-range addends, two arrival orders
  // almost surely round differently for at least one element.
  const auto buffers = make_worker_buffers(16, 512, 6);
  rng::Generator entropy(7);
  std::vector<float> first(512);
  allreduce_sum(views(buffers), first, AllReduceAlgo::kRingShuffled, &entropy);
  bool any_diff = false;
  for (int launch = 0; launch < 16 && !any_diff; ++launch) {
    std::vector<float> next(512);
    allreduce_sum(views(buffers), next, AllReduceAlgo::kRingShuffled,
                  &entropy);
    any_diff = next != first;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AllReduce, RankPermutationChangesRingOrderedResult) {
  // The distributed analogue of input-order sensitivity (paper Fig. 6):
  // deterministic given rank layout, but a different placement of the same
  // gradients rounds differently.
  const auto buffers = make_worker_buffers(8, 512, 8);
  std::vector<float> forward(512);
  allreduce_sum(views(buffers), forward, AllReduceAlgo::kRingOrdered, nullptr);

  auto reversed = buffers;
  std::reverse(reversed.begin(), reversed.end());
  std::vector<float> backward(512);
  allreduce_sum(views(reversed), backward, AllReduceAlgo::kRingOrdered,
                nullptr);
  EXPECT_NE(forward, backward);
}

class AllReduceWorkerSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllReduceWorkerSweep, TreeSumCloseToExact) {
  const auto workers = static_cast<std::size_t>(GetParam());
  const auto buffers = make_worker_buffers(workers, 128, 9);
  std::vector<float> out(128);
  allreduce_sum(views(buffers), out, AllReduceAlgo::kTreeFixed, nullptr);
  for (std::size_t i = 0; i < 128; ++i) {
    double exact = 0.0;
    for (const auto& buffer : buffers) exact += buffer[i];
    EXPECT_NEAR(out[i], exact, 1e-3 * std::max(1.0, std::fabs(exact)));
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, AllReduceWorkerSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace nnr::distributed
