// Async parameter server: determinism contract, staleness-driven divergence,
// and the degenerate single-worker case.
#include <gtest/gtest.h>

#include "core/study.h"
#include "core/tasks.h"
#include "distributed/async_param_server.h"

namespace nnr::distributed {
namespace {

using core::NoiseVariant;
using core::RunResult;
using core::Task;
using core::TrainJob;

Task tiny_task() {
  Task task = core::small_cnn_bn_cifar10();
  task.dataset = data::synth_cifar10(60, 30);
  task.recipe.epochs = 2;
  task.recipe.batch_size = 10;
  return task;
}

TEST(AsyncParamServer, FixedArrivalsDeterministicModeIsBitwiseReproducible) {
  const Task task = tiny_task();
  const TrainJob job = task.job(NoiseVariant::kControl, hw::v100());
  const AsyncConfig config{.workers = 4, .shuffled_arrivals = false};
  const RunResult a = train_replicate_async(job, config, 0);
  const RunResult b = train_replicate_async(job, config, 1);
  EXPECT_EQ(a.final_weights, b.final_weights);
  EXPECT_EQ(a.test_predictions, b.test_predictions);
}

TEST(AsyncParamServer, ControlVariantNeutralizesShuffledArrivals) {
  // Under CONTROL the scheduler channel is pinned, so even
  // shuffled_arrivals = true must reproduce bitwise (the shuffle draws from
  // a pinned stream is identical across replicates).
  const Task task = tiny_task();
  const TrainJob job = task.job(NoiseVariant::kControl, hw::v100());
  const AsyncConfig config{.workers = 4, .shuffled_arrivals = true};
  const RunResult a = train_replicate_async(job, config, 0);
  const RunResult b = train_replicate_async(job, config, 1);
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST(AsyncParamServer, ArrivalOrderAloneCausesDivergence) {
  // IMPL variant: every algorithmic seed pinned; workers' push order varies
  // per replicate. Unlike kernel rounding noise, stale-gradient reordering
  // must diverge visibly even at tiny scale.
  const Task task = tiny_task();
  const TrainJob job = task.job(NoiseVariant::kImpl, hw::v100());
  const AsyncConfig config{.workers = 4, .shuffled_arrivals = true};
  const RunResult a = train_replicate_async(job, config, 0);
  const RunResult b = train_replicate_async(job, config, 1);
  EXPECT_NE(a.final_weights, b.final_weights);
}

TEST(AsyncParamServer, SingleWorkerHasNoStaleness) {
  // With one worker the fetch -> compute -> apply loop is sequential SGD;
  // shuffled arrivals have nothing to permute, so IMPL divergence collapses
  // to kernel rounding only — and in deterministic mode, to zero.
  Task task = tiny_task();
  TrainJob job = task.job(NoiseVariant::kImpl, hw::v100());
  // Force deterministic kernels while keeping the varying scheduler channel:
  core::ChannelToggles toggles = core::toggles_for(NoiseVariant::kImpl);
  toggles.mode = hw::DeterminismMode::kDeterministic;
  job.toggles_override = toggles;

  const AsyncConfig config{.workers = 1, .shuffled_arrivals = true};
  const RunResult a = train_replicate_async(job, config, 0);
  const RunResult b = train_replicate_async(job, config, 1);
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST(AsyncParamServer, MoreWorkersMeansMoreStalenessNoise) {
  // Average pairwise churn across 4 replicates should not shrink when the
  // worker pool (and with it the maximum staleness) grows. We compare 2 vs
  // 8 workers under IMPL noise.
  const Task task = tiny_task();
  const TrainJob job = task.job(NoiseVariant::kImpl, hw::v100());

  auto mean_l2 = [&](int workers) {
    const AsyncConfig config{.workers = workers, .shuffled_arrivals = true};
    std::vector<RunResult> results;
    results.reserve(4);
    for (std::uint64_t r = 0; r < 4; ++r) {
      results.push_back(train_replicate_async(job, config, r));
    }
    return core::summarize(results).mean_l2;
  };

  const double l2_small = mean_l2(2);
  const double l2_large = mean_l2(8);
  EXPECT_GT(l2_large, 0.0);
  // Noise grows (or at least does not vanish) with staleness; allow equal
  // scale but catch regressions where large pools lose the noise entirely.
  EXPECT_GT(l2_large, l2_small * 0.25);
}

TEST(AsyncParamServer, TrainsToAboveChanceAccuracy) {
  Task task = core::small_cnn_bn_cifar10();
  task.dataset = data::synth_cifar10(200, 100);
  task.recipe.epochs = 8;
  task.recipe.batch_size = 20;
  const TrainJob job = task.job(NoiseVariant::kAlgoPlusImpl, hw::v100());
  const AsyncConfig config{.workers = 2, .shuffled_arrivals = true};
  const RunResult r = train_replicate_async(job, config, 0);
  EXPECT_GT(r.test_accuracy, 0.15);  // chance is 0.10 for 10 classes
}

TEST(AsyncParamServer, SingleWorkerMatchesSynchronousTrainerBitwise) {
  // fetch -> compute -> apply with one worker consumes every noise channel
  // in exactly the order core::train_replicate does, so the two trainers
  // must agree to the bit — the strongest equivalence statement between the
  // distributed and single-device code paths.
  Task task = tiny_task();
  const TrainJob job = task.job(NoiseVariant::kAlgoPlusImpl, hw::v100());
  const core::RunResult sync = core::train_replicate(job, 3);
  const AsyncConfig config{.workers = 1, .shuffled_arrivals = true};
  const RunResult async = train_replicate_async(job, config, 3);
  EXPECT_EQ(sync.final_weights, async.final_weights);
  EXPECT_EQ(sync.test_predictions, async.test_predictions);
}

TEST(AsyncParamServer, AccuracyComparableToSynchronousTraining) {
  // Staleness costs some accuracy but must not destroy training: async
  // should reach at least half the synchronous accuracy on this toy cell.
  Task task = tiny_task();
  task.recipe.epochs = 6;
  const TrainJob job = task.job(NoiseVariant::kControl, hw::v100());

  const core::RunResult sync = core::train_replicate(job, 0);
  const AsyncConfig config{.workers = 4, .shuffled_arrivals = false};
  const RunResult async = train_replicate_async(job, config, 0);
  EXPECT_GT(async.test_accuracy, 0.5 * sync.test_accuracy);
}

}  // namespace
}  // namespace nnr::distributed
