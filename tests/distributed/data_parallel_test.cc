#include "distributed/data_parallel.h"

#include <gtest/gtest.h>

#include "core/replicates.h"
#include "core/study.h"
#include "data/synth_images.h"
#include "nn/zoo.h"

namespace nnr::distributed {
namespace {

class DataParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ClassificationDataset(data::synth_cifar10(160, 80));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static core::TrainJob job(core::NoiseVariant variant) {
    core::TrainJob j;
    j.make_model = [] { return nn::small_cnn(10, true); };
    j.dataset = dataset_;
    j.recipe = core::cifar_recipe(2);
    j.variant = variant;
    j.device = hw::v100();
    j.base_seed = 0xD15Cull;
    return j;
  }

  static data::ClassificationDataset* dataset_;
};

data::ClassificationDataset* DataParallelTest::dataset_ = nullptr;

TEST_F(DataParallelTest, ProducesValidResults) {
  const DistributedConfig config{.workers = 4};
  const core::RunResult result =
      train_replicate_distributed(job(core::NoiseVariant::kControl), config, 0);
  EXPECT_EQ(result.test_predictions.size(), 80u);
  EXPECT_FALSE(result.final_weights.empty());
}

TEST_F(DataParallelTest, DeterministicModeIsBitwiseReproducible) {
  const DistributedConfig config{.workers = 4};
  const core::RunResult a =
      train_replicate_distributed(job(core::NoiseVariant::kControl), config, 0);
  const core::RunResult b =
      train_replicate_distributed(job(core::NoiseVariant::kControl), config, 0);
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST_F(DataParallelTest, ControlReplicatesIdenticalAcrossReplicateIds) {
  const DistributedConfig config{.workers = 3};
  const core::RunResult a =
      train_replicate_distributed(job(core::NoiseVariant::kControl), config, 0);
  const core::RunResult b =
      train_replicate_distributed(job(core::NoiseVariant::kControl), config, 1);
  EXPECT_EQ(a.final_weights, b.final_weights);
}

TEST_F(DataParallelTest, ImplReplicatesDiverge) {
  const DistributedConfig config{.workers = 4};
  const core::RunResult a =
      train_replicate_distributed(job(core::NoiseVariant::kImpl), config, 0);
  const core::RunResult b =
      train_replicate_distributed(job(core::NoiseVariant::kImpl), config, 1);
  EXPECT_NE(a.final_weights, b.final_weights);
}

TEST_F(DataParallelTest, WorkerCountChangesRoundingButNotLearning) {
  // Different shardings reorder the same arithmetic: results differ bitwise
  // but represent the same optimization trajectory (similar accuracy).
  const core::RunResult one = train_replicate_distributed(
      job(core::NoiseVariant::kControl), DistributedConfig{.workers = 1}, 0);
  const core::RunResult four = train_replicate_distributed(
      job(core::NoiseVariant::kControl), DistributedConfig{.workers = 4}, 0);
  EXPECT_NE(one.final_weights, four.final_weights);
  EXPECT_NEAR(one.test_accuracy, four.test_accuracy, 0.25);
}

TEST_F(DataParallelTest, MoreWorkersThanExamplesClamps) {
  const DistributedConfig config{.workers = 64};  // batch is 32
  const core::RunResult result =
      train_replicate_distributed(job(core::NoiseVariant::kControl), config, 0);
  EXPECT_FALSE(result.final_weights.empty());
}

TEST_F(DataParallelTest, SingleWorkerMatchesSingleDeviceSemantics) {
  // workers=1 must follow the same noise-channel consumption as the
  // single-device trainer: CONTROL mode gives a deterministic run whose
  // accuracy tracks core::train_replicate closely.
  const core::TrainJob j = job(core::NoiseVariant::kControl);
  const core::RunResult single_device = core::train_replicate(j, 0);
  const core::RunResult one_worker = train_replicate_distributed(
      j, DistributedConfig{.workers = 1}, 0);
  EXPECT_EQ(single_device.test_predictions.size(),
            one_worker.test_predictions.size());
  EXPECT_NEAR(single_device.test_accuracy, one_worker.test_accuracy, 0.25);
}

}  // namespace
}  // namespace nnr::distributed
