// RunResult (de)serialization: bitwise round-trip, key verification, and
// corruption detection — the persistence half of the cache-validity
// contract.
#include "serialize/run_result.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace nnr::serialize {
namespace {

namespace fs = std::filesystem;

core::RunResult sample_result() {
  core::RunResult r;
  r.test_predictions = {1, 0, 2, 2, 9};
  // Values chosen to exercise exact float bits, including a denormal-ish
  // small value and a negative zero.
  r.test_confidences = {0.1F, 1.0F, -0.0F, 1e-38F, 0.9999999F};
  r.final_weights = {3.14159265F, -2.71828182F};
  r.test_accuracy = 0.123456789012345;
  r.final_train_loss = 9.87654321e-3;
  return r;
}

class RunResultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("nnr_run_result_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  std::string path_;
};

TEST_F(RunResultTest, RoundTripIsBitwiseLossless) {
  const core::RunResult original = sample_result();
  save_run_result(path_, original, 0x1234, 0x5678);
  const core::RunResult loaded = load_run_result(path_, 0x1234, 0x5678);
  EXPECT_EQ(loaded.test_predictions, original.test_predictions);
  // Vector equality on floats is bitwise-adjacent but -0.0 == 0.0; compare
  // the raw bit patterns to enforce the stronger contract.
  ASSERT_EQ(loaded.test_confidences.size(), original.test_confidences.size());
  for (std::size_t i = 0; i < original.test_confidences.size(); ++i) {
    EXPECT_EQ(std::memcmp(&loaded.test_confidences[i],
                          &original.test_confidences[i], sizeof(float)),
              0)
        << "confidence " << i << " changed bits";
  }
  EXPECT_EQ(loaded.final_weights, original.final_weights);
  EXPECT_EQ(loaded.test_accuracy, original.test_accuracy);
  EXPECT_EQ(loaded.final_train_loss, original.final_train_loss);
}

TEST_F(RunResultTest, SaveReturnsTheExactFileSize) {
  const std::uint64_t bytes = save_run_result(path_, sample_result(), 1, 2);
  EXPECT_EQ(bytes, fs::file_size(path_))
      << "cache byte accounting relies on the serializer's count";
}

TEST_F(RunResultTest, EmptyVectorsRoundTrip) {
  const core::RunResult empty;
  save_run_result(path_, empty, 1, 2);
  const core::RunResult loaded = load_run_result(path_, 1, 2);
  EXPECT_TRUE(loaded.test_predictions.empty());
  EXPECT_TRUE(loaded.final_weights.empty());
}

TEST_F(RunResultTest, KeyMismatchThrows) {
  save_run_result(path_, sample_result(), 0x1234, 0x5678);
  EXPECT_THROW(load_run_result(path_, 0x1234, 0x9999), CheckpointError);
  EXPECT_THROW(load_run_result(path_, 0x9999, 0x5678), CheckpointError);
}

TEST_F(RunResultTest, MissingFileThrows) {
  EXPECT_THROW(load_run_result(path_, 1, 2), CheckpointError);
}

TEST_F(RunResultTest, TruncationThrows) {
  save_run_result(path_, sample_result(), 1, 2);
  fs::resize_file(path_, fs::file_size(path_) / 2);
  EXPECT_THROW(load_run_result(path_, 1, 2), CheckpointError);
}

TEST_F(RunResultTest, BitFlipThrows) {
  save_run_result(path_, sample_result(), 1, 2);
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(40);
  char c = 0;
  f.read(&c, 1);
  f.seekp(40);
  c = static_cast<char>(c ^ 1);
  f.write(&c, 1);
  f.close();
  EXPECT_THROW(load_run_result(path_, 1, 2), CheckpointError);
}

TEST_F(RunResultTest, WrongMagicThrows) {
  std::ofstream(path_, std::ios::binary) << "NOTANNRFILE_PADDING_PADDING";
  EXPECT_THROW(load_run_result(path_, 1, 2), CheckpointError);
}

// The wire/file duality the remote cache relies on: encode_run_result's
// bytes ARE the file format, byte for byte, and decode accepts either.
TEST_F(RunResultTest, EncodedBytesMatchTheFileExactly) {
  const core::RunResult original = sample_result();
  save_run_result(path_, original, 0x1234, 0x5678);
  std::ifstream in(path_, std::ios::binary);
  const std::string file_bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
  const std::string encoded = encode_run_result(original, 0x1234, 0x5678);
  EXPECT_EQ(encoded, file_bytes)
      << "a PUT body must be storable verbatim as a cache file";
}

TEST_F(RunResultTest, DecodeRoundTripsInMemory) {
  const core::RunResult original = sample_result();
  const std::string bytes = encode_run_result(original, 7, 8);
  const core::RunResult decoded = decode_run_result(bytes, 7, 8, "<test>");
  EXPECT_EQ(decoded.test_predictions, original.test_predictions);
  EXPECT_EQ(decoded.final_weights, original.final_weights);
  EXPECT_EQ(decoded.test_accuracy, original.test_accuracy);
  EXPECT_THROW((void)decode_run_result(bytes, 7, 9, "<test>"),
               CheckpointError);
}

TEST_F(RunResultTest, ValidateRunResultBytesChecksEverything) {
  const std::string bytes = encode_run_result(sample_result(), 7, 8);
  EXPECT_TRUE(validate_run_result_bytes(bytes, 7, 8));
  EXPECT_FALSE(validate_run_result_bytes(bytes, 7, 9)) << "wrong key";
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x10;
  EXPECT_FALSE(validate_run_result_bytes(corrupt, 7, 8)) << "bit flip";
  EXPECT_FALSE(validate_run_result_bytes(bytes.substr(0, bytes.size() - 4),
                                         7, 8))
      << "truncation";
  EXPECT_FALSE(validate_run_result_bytes("junk", 7, 8));
}

}  // namespace
}  // namespace nnr::serialize
