// Checkpoint round-trip: bitwise fidelity, structure validation, corruption
// detection, and the resume-determinism property (save -> load -> continue
// == uninterrupted run under deterministic execution).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/zoo.h"
#include "opt/sgd.h"
#include "serialize/checkpoint.h"
#include "test_util.h"

namespace nnr::serialize {
namespace {

using nn::Model;
using nn::RunContext;
using tensor::Shape;
using tensor::Tensor;
using testutil::deterministic_context;
using testutil::fill_random;

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() / stem).string();
}

/// RAII cleanup for checkpoint files created by tests.
class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Checkpoint, RoundTripIsBitwiseLossless) {
  ScopedFile file(temp_path("ckpt_roundtrip.nnr"));
  Model m = nn::small_cnn(10, /*with_batchnorm=*/true);
  rng::Generator init(3);
  m.init_weights(init);
  const std::vector<float> before = m.flat_weights();

  save_model(file.path(), m);

  Model m2 = nn::small_cnn(10, true);
  rng::Generator other_init(999);  // different init: load must overwrite it
  m2.init_weights(other_init);
  load_model(file.path(), m2);

  const std::vector<float> after = m2.flat_weights();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "weight " << i;
  }
}

TEST(Checkpoint, RestoresBatchNormRunningStatistics) {
  ScopedFile file(temp_path("ckpt_bnstats.nnr"));
  Model m = nn::small_cnn(10, true);
  rng::Generator init(5);
  m.init_weights(init);

  // Run a training step so the running stats move off their defaults.
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  Tensor x(Shape{4, 3, 16, 16});
  fill_random(x, 7);
  (void)m.forward(x, ctx);

  std::vector<float> stats_before;
  for (const nn::NamedBuffer& b : m.buffers()) {
    stats_before.insert(stats_before.end(), b.value->data().begin(),
                        b.value->data().end());
  }
  ASSERT_FALSE(stats_before.empty());

  save_model(file.path(), m);
  Model m2 = nn::small_cnn(10, true);
  load_model(file.path(), m2);

  std::vector<float> stats_after;
  for (const nn::NamedBuffer& b : m2.buffers()) {
    stats_after.insert(stats_after.end(), b.value->data().begin(),
                       b.value->data().end());
  }
  ASSERT_EQ(stats_before.size(), stats_after.size());
  for (std::size_t i = 0; i < stats_before.size(); ++i) {
    EXPECT_EQ(stats_before[i], stats_after[i]) << "buffer element " << i;
  }
}

TEST(Checkpoint, ResNetWithProjectionsRoundTrips) {
  ScopedFile file(temp_path("ckpt_resnet.nnr"));
  Model m = nn::resnet18s(10);
  rng::Generator init(11);
  m.init_weights(init);
  const std::vector<float> before = m.flat_weights();

  save_model(file.path(), m);
  Model m2 = nn::resnet18s(10);
  load_model(file.path(), m2);

  const std::vector<float> after = m2.flat_weights();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
}

TEST(Checkpoint, RejectsStructureMismatch) {
  ScopedFile file(temp_path("ckpt_mismatch.nnr"));
  Model m = nn::small_cnn(10, true);
  rng::Generator init(13);
  m.init_weights(init);
  save_model(file.path(), m);

  Model different = nn::small_cnn(100, true);  // head width differs
  EXPECT_THROW(load_model(file.path(), different), CheckpointError);

  Model no_bn = nn::small_cnn(10, false);  // entry count differs
  EXPECT_THROW(load_model(file.path(), no_bn), CheckpointError);
}

TEST(Checkpoint, DetectsBitFlipCorruption) {
  ScopedFile file(temp_path("ckpt_corrupt.nnr"));
  Model m = nn::small_cnn(10, false);
  rng::Generator init(17);
  m.init_weights(init);
  save_model(file.path(), m);

  // Flip one byte in the middle of the payload.
  std::fstream f(file.path(),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::int64_t>(f.tellg());
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  Model m2 = nn::small_cnn(10, false);
  EXPECT_THROW(load_model(file.path(), m2), CheckpointError);
}

TEST(Checkpoint, RejectsNonCheckpointFile) {
  ScopedFile file(temp_path("ckpt_garbage.nnr"));
  std::ofstream(file.path()) << "definitely not a checkpoint";
  Model m = nn::small_cnn(10, false);
  EXPECT_THROW(load_model(file.path(), m), CheckpointError);
}

TEST(Checkpoint, MissingFileThrows) {
  Model m = nn::small_cnn(10, false);
  EXPECT_THROW(load_model(temp_path("ckpt_does_not_exist.nnr"), m),
               CheckpointError);
}

TEST(Checkpoint, EntryCountCoversParamsAndBuffers) {
  Model with_bn = nn::small_cnn(10, true);
  Model without = nn::small_cnn(10, false);
  // BN adds two params and two buffers per layer, so the with-BN model has
  // strictly more entries and more than params alone.
  EXPECT_GT(checkpoint_entry_count(with_bn), checkpoint_entry_count(without));
  EXPECT_GT(checkpoint_entry_count(with_bn), with_bn.params().size());
}

TEST(Checkpoint, ResumeEqualsUninterruptedTraining) {
  // Train 4 steps straight vs train 2, checkpoint, reload, train 2 more —
  // bitwise identical weights under deterministic execution.
  ScopedFile file(temp_path("ckpt_resume.nnr"));
  Tensor x(Shape{4, 3, 16, 16});
  fill_random(x, 23);
  const std::vector<std::int32_t> labels = {0, 1, 2, 3};

  auto train_steps = [&](Model& m, int steps) {
    auto hw = deterministic_context();
    RunContext ctx{.hw = &hw, .training = true};
    opt::Sgd sgd(m.params(), 0.9F);
    for (int s = 0; s < steps; ++s) {
      m.zero_grads();
      const Tensor logits = m.forward(x, ctx);
      const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels, ctx);
      (void)m.backward(loss.grad_logits, ctx);
      sgd.step(0.01F);
    }
  };

  Model first_half = nn::small_cnn(10, true);
  rng::Generator init_b(29);
  first_half.init_weights(init_b);
  train_steps(first_half, 2);
  save_model(file.path(), first_half);

  Model resumed = nn::small_cnn(10, true);
  load_model(file.path(), resumed);
  train_steps(resumed, 2);

  // The uninterrupted arm restarts its optimizer at the same point so both
  // arms see identical momentum histories (the checkpoint stores model
  // state, not optimizer state — matching TF's model-only checkpoints).
  Model straight = nn::small_cnn(10, true);
  rng::Generator init_c(29);
  straight.init_weights(init_c);
  train_steps(straight, 2);
  train_steps(straight, 2);

  const std::vector<float> b = resumed.flat_weights();
  const std::vector<float> c = straight.flat_weights();
  ASSERT_EQ(c.size(), b.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c[i], b[i]) << "weight " << i;
  }
}

}  // namespace
}  // namespace nnr::serialize
