// AccessJournal: append/read round trips, duplicate records (LRU recency =
// last occurrence), tolerance of torn/garbage lines, and atomic rewrite —
// the persistence layer behind the replicate cache's LRU eviction.
#include "serialize/journal.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace nnr::serialize {
namespace {

namespace fs = std::filesystem;

class AccessJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("nnr_journal_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "access.journal").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string path_;
};

TEST_F(AccessJournalTest, MissingJournalReadsEmpty) {
  const AccessJournal journal(path_);
  EXPECT_TRUE(journal.read().empty());
  EXPECT_EQ(journal.size_bytes(), 0);
}

TEST_F(AccessJournalTest, AppendReadRoundTripInOrder) {
  const AccessJournal journal(path_);
  journal.append("aaaa");
  journal.append("bbbb");
  journal.append("aaaa");  // duplicates preserved: last occurrence = recency
  const auto tokens = journal.read();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "aaaa");
  EXPECT_EQ(tokens[1], "bbbb");
  EXPECT_EQ(tokens[2], "aaaa");
  EXPECT_GT(journal.size_bytes(), 0);
}

TEST_F(AccessJournalTest, TornTrailingLineIsSkippedNotFatal) {
  const AccessJournal journal(path_);
  journal.append("cafe");
  {
    // A writer killed mid-append: bytes with no newline, including
    // non-printable garbage.
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << "dead\nbe\x01";
  }
  const auto tokens = journal.read();
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "cafe");
  EXPECT_EQ(tokens[1], "dead");
}

TEST_F(AccessJournalTest, RewriteReplacesContentAtomically) {
  const AccessJournal journal(path_);
  journal.append("old1");
  journal.append("old2");
  journal.rewrite({"new1"});
  const auto tokens = journal.read();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "new1");
  // No rewrite temp file left behind.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace nnr::serialize
