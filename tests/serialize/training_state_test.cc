// Training-state checkpoints: with optimizer state captured, resume is
// bitwise identical to uninterrupted training WITHOUT restarting momentum.
#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/zoo.h"
#include "opt/adam.h"
#include "opt/rmsprop.h"
#include "opt/sgd.h"
#include "serialize/checkpoint.h"
#include "test_util.h"

namespace nnr::serialize {
namespace {

using nn::Model;
using nn::RunContext;
using tensor::Shape;
using tensor::Tensor;
using testutil::deterministic_context;
using testutil::fill_random;

std::string temp_path(const std::string& stem) {
  return (std::filesystem::temp_directory_path() / stem).string();
}

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void train_steps(Model& model, opt::Optimizer& optimizer, const Tensor& x,
                 const std::vector<std::int32_t>& labels, int steps) {
  auto hw = deterministic_context();
  RunContext ctx{.hw = &hw, .training = true};
  for (int s = 0; s < steps; ++s) {
    model.zero_grads();
    const Tensor logits = model.forward(x, ctx);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels, ctx);
    (void)model.backward(loss.grad_logits, ctx);
    optimizer.step(0.02F);
  }
}

TEST(TrainingState, ResumeWithMomentumIsBitwiseIdentical) {
  ScopedFile file(temp_path("trns_sgd.nnr"));
  Tensor x(Shape{4, 3, 16, 16});
  fill_random(x, 3);
  const std::vector<std::int32_t> labels = {0, 1, 2, 3};

  // Uninterrupted: 6 steps with one momentum optimizer.
  Model straight = nn::small_cnn(10, true);
  rng::Generator init_a(7);
  straight.init_weights(init_a);
  opt::Sgd opt_straight(straight.params(), 0.9F);
  train_steps(straight, opt_straight, x, labels, 6);

  // Interrupted at step 3, full training state saved.
  Model half = nn::small_cnn(10, true);
  rng::Generator init_b(7);
  half.init_weights(init_b);
  opt::Sgd opt_half(half.params(), 0.9F);
  train_steps(half, opt_half, x, labels, 3);
  save_training_state(file.path(), half, opt_half);

  Model resumed = nn::small_cnn(10, true);
  opt::Sgd opt_resumed(resumed.params(), 0.9F);
  load_training_state(file.path(), resumed, opt_resumed);
  EXPECT_EQ(opt_resumed.steps_taken(), 3);
  train_steps(resumed, opt_resumed, x, labels, 3);

  const std::vector<float> a = straight.flat_weights();
  const std::vector<float> b = resumed.flat_weights();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "weight " << i;
  }
}

TEST(TrainingState, AdamResumeRestoresMomentsAndBiasCorrection) {
  // Adam's updates depend on the step count through bias correction; a
  // resume that reset steps_taken would visibly diverge.
  ScopedFile file(temp_path("trns_adam.nnr"));
  Tensor x(Shape{2, 3, 16, 16});
  fill_random(x, 11);
  const std::vector<std::int32_t> labels = {1, 4};

  Model straight = nn::small_cnn(10, false);
  rng::Generator init_a(13);
  straight.init_weights(init_a);
  opt::Adam opt_straight(straight.params());
  train_steps(straight, opt_straight, x, labels, 8);

  Model half = nn::small_cnn(10, false);
  rng::Generator init_b(13);
  half.init_weights(init_b);
  opt::Adam opt_half(half.params());
  train_steps(half, opt_half, x, labels, 5);
  save_training_state(file.path(), half, opt_half);

  Model resumed = nn::small_cnn(10, false);
  opt::Adam opt_resumed(resumed.params());
  load_training_state(file.path(), resumed, opt_resumed);
  EXPECT_EQ(opt_resumed.steps_taken(), 5);
  train_steps(resumed, opt_resumed, x, labels, 3);

  EXPECT_EQ(straight.flat_weights(), resumed.flat_weights());
}

TEST(TrainingState, RmsPropResumeIsBitwiseIdentical) {
  ScopedFile file(temp_path("trns_rms.nnr"));
  Tensor x(Shape{2, 3, 16, 16});
  fill_random(x, 17);
  const std::vector<std::int32_t> labels = {2, 7};

  Model straight = nn::small_cnn(10, false);
  rng::Generator init_a(19);
  straight.init_weights(init_a);
  opt::RmsPropConfig cfg;
  cfg.momentum = 0.9F;
  opt::RmsProp opt_straight(straight.params(), cfg);
  train_steps(straight, opt_straight, x, labels, 6);

  Model half = nn::small_cnn(10, false);
  rng::Generator init_b(19);
  half.init_weights(init_b);
  opt::RmsProp opt_half(half.params(), cfg);
  train_steps(half, opt_half, x, labels, 2);
  save_training_state(file.path(), half, opt_half);

  Model resumed = nn::small_cnn(10, false);
  opt::RmsProp opt_resumed(resumed.params(), cfg);
  load_training_state(file.path(), resumed, opt_resumed);
  train_steps(resumed, opt_resumed, x, labels, 4);

  EXPECT_EQ(straight.flat_weights(), resumed.flat_weights());
}

TEST(TrainingState, RejectsOptimizerTypeMismatch) {
  ScopedFile file(temp_path("trns_mismatch.nnr"));
  Model m = nn::small_cnn(10, false);
  rng::Generator init(23);
  m.init_weights(init);
  opt::Sgd sgd(m.params(), 0.9F);
  save_training_state(file.path(), m, sgd);

  Model m2 = nn::small_cnn(10, false);
  opt::Adam adam(m2.params());  // Adam has 2 slots per param, SGD has 1
  EXPECT_THROW(load_training_state(file.path(), m2, adam), CheckpointError);
}

TEST(TrainingState, ModelOnlyLoaderRejectsTrainingStateFile) {
  // The two formats carry different magics so a model-only consumer cannot
  // silently misread a training-state file (and vice versa).
  ScopedFile file(temp_path("trns_magic.nnr"));
  Model m = nn::small_cnn(10, false);
  rng::Generator init(29);
  m.init_weights(init);
  opt::Sgd sgd(m.params());
  save_training_state(file.path(), m, sgd);

  Model m2 = nn::small_cnn(10, false);
  EXPECT_THROW(load_model(file.path(), m2), CheckpointError);

  ScopedFile model_file(temp_path("ckpt_magic.nnr"));
  save_model(model_file.path(), m);
  opt::Sgd sgd2(m2.params());
  EXPECT_THROW(load_training_state(model_file.path(), m2, sgd2),
               CheckpointError);
}

}  // namespace
}  // namespace nnr::serialize
