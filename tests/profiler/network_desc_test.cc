#include "profiler/network_desc.h"

#include <gtest/gtest.h>

namespace nnr::profiler {
namespace {

TEST(LayerDesc, ConvMacs) {
  const LayerDesc conv{.kind = LayerKind::kConv,
                       .kernel = 3,
                       .in_channels = 64,
                       .out_channels = 128,
                       .out_h = 56,
                       .out_w = 56};
  EXPECT_DOUBLE_EQ(conv.macs(), 56.0 * 56 * 9 * 64 * 128);
}

TEST(LayerDesc, DepthwiseMacsScaleWithChannelsNotProduct) {
  const LayerDesc dw{.kind = LayerKind::kDepthwiseConv,
                     .kernel = 3,
                     .in_channels = 128,
                     .out_channels = 128,
                     .out_h = 14,
                     .out_w = 14};
  EXPECT_DOUBLE_EQ(dw.macs(), 14.0 * 14 * 9 * 128);
}

TEST(LayerDesc, MemoryBoundLayersHaveZeroMacs) {
  const LayerDesc bn{.kind = LayerKind::kBatchNorm,
                     .out_channels = 64,
                     .out_h = 56,
                     .out_w = 56};
  EXPECT_EQ(bn.macs(), 0.0);
  EXPECT_GT(bn.activation_bytes(), 0.0);
}

TEST(NetworkDesc, SuiteHasTenNetworks) {
  EXPECT_EQ(profiled_networks().size(), 10u);
}

TEST(NetworkDesc, Vgg19DeeperThanVgg16) {
  EXPECT_GT(vgg19_desc().total_macs(), vgg16_desc().total_macs());
}

TEST(NetworkDesc, ResNet152DeeperThanResNet50) {
  EXPECT_GT(resnet152_desc().total_macs(), resnet50_desc().total_macs());
}

TEST(NetworkDesc, MacScaleSanity) {
  // Published per-image MAC counts (approximate, 224x224): VGG16 ~15.5G,
  // ResNet50 ~4.1G, MobileNet ~0.57G. Our descriptors must land in range.
  EXPECT_NEAR(vgg16_desc().total_macs() / 1e9, 15.5, 3.0);
  EXPECT_NEAR(resnet50_desc().total_macs() / 1e9, 4.1, 1.5);
  EXPECT_NEAR(mobilenet_desc().total_macs() / 1e9, 0.57, 0.25);
}

TEST(NetworkDesc, MobileNetIsMostlyPointwiseGemm) {
  double gemm_macs = 0.0;
  double conv_macs = 0.0;
  for (const LayerDesc& l : mobilenet_desc().layers) {
    if (l.kind == LayerKind::kConv) {
      (l.gemm_lowered ? gemm_macs : conv_macs) += l.macs();
    }
  }
  EXPECT_GT(gemm_macs, 5.0 * conv_macs);
}

TEST(NetworkDesc, VggHasNoDepthwiseLayers) {
  for (const LayerDesc& l : vgg19_desc().layers) {
    EXPECT_NE(l.kind, LayerKind::kDepthwiseConv);
  }
}

class MediumCnnDescTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(MediumCnnDescTest, SixConvStagesWithRequestedKernel) {
  const NetworkDesc net = medium_cnn_desc(GetParam());
  int convs = 0;
  for (const LayerDesc& l : net.layers) {
    if (l.kind == LayerKind::kConv) {
      ++convs;
      EXPECT_EQ(l.kernel, GetParam());
    }
  }
  EXPECT_EQ(convs, 6);
}

TEST_P(MediumCnnDescTest, MacsGrowWithKernel) {
  if (GetParam() == 1) return;
  EXPECT_GT(medium_cnn_desc(GetParam()).total_macs(),
            medium_cnn_desc(1).total_macs());
}

INSTANTIATE_TEST_SUITE_P(Kernels, MediumCnnDescTest,
                         ::testing::Values(1, 3, 5, 7));

}  // namespace
}  // namespace nnr::profiler
