#include "profiler/cost_model.h"

#include <gtest/gtest.h>

namespace nnr::profiler {
namespace {

using hw::DeterminismMode;
using hw::GpuArch;

TEST(CostModel, AutotunePicksFastestOption) {
  const CostModel model = CostModel::for_arch(GpuArch::kVolta);
  const AlgoOption best =
      model.autotune(ConvPass::kWgrad, 3, DeterminismMode::kDefault);
  for (const AlgoOption& option : model.menu(ConvPass::kWgrad, 3)) {
    EXPECT_GE(best.efficiency, option.efficiency);
  }
}

TEST(CostModel, DeterministicModeOnlyPicksDeterministicAlgos) {
  for (const GpuArch arch :
       {GpuArch::kPascal, GpuArch::kVolta, GpuArch::kTuring}) {
    const CostModel model = CostModel::for_arch(arch);
    for (const ConvPass pass :
         {ConvPass::kForward, ConvPass::kWgrad, ConvPass::kBgrad}) {
      for (const std::int64_t k : {1, 3, 5, 7}) {
        EXPECT_TRUE(model
                        .autotune(pass, k, DeterminismMode::kDeterministic)
                        .deterministic);
      }
    }
  }
}

TEST(CostModel, WgradAtomicIsNeverDeterministic) {
  const CostModel model = CostModel::for_arch(GpuArch::kTuring);
  for (const AlgoOption& option : model.menu(ConvPass::kWgrad, 3)) {
    if (option.algo == ConvAlgo::kAtomicReduction) {
      EXPECT_FALSE(option.deterministic);
    }
  }
}

TEST(CostModel, DeterministicNeverFasterThanDefault) {
  for (const GpuArch arch :
       {GpuArch::kPascal, GpuArch::kVolta, GpuArch::kTuring}) {
    for (const std::int64_t k : {1, 3, 5, 7}) {
      const OverheadResult r =
          deterministic_overhead(medium_cnn_desc(k), arch);
      EXPECT_GE(r.normalized_pct(), 100.0)
          << "arch " << static_cast<int>(arch) << " k " << k;
    }
  }
}

TEST(CostModel, OverheadGrowsWithKernelSize) {
  // Paper Fig. 8(b): "larger kernel size always comes with larger overhead".
  for (const GpuArch arch :
       {GpuArch::kPascal, GpuArch::kVolta, GpuArch::kTuring}) {
    double previous = 0.0;
    for (const std::int64_t k : {1, 3, 5, 7}) {
      const double pct =
          deterministic_overhead(medium_cnn_desc(k), arch).normalized_pct();
      EXPECT_GT(pct, previous) << "arch " << static_cast<int>(arch);
      previous = pct;
    }
  }
}

TEST(CostModel, PascalWorstVoltaMiddleTuringBest) {
  // Paper Fig. 8: P100 overhead >> V100 > T4 at every kernel size.
  for (const std::int64_t k : {1, 3, 5, 7}) {
    const double p100 =
        deterministic_overhead(medium_cnn_desc(k), GpuArch::kPascal)
            .normalized_pct();
    const double v100 =
        deterministic_overhead(medium_cnn_desc(k), GpuArch::kVolta)
            .normalized_pct();
    const double t4 =
        deterministic_overhead(medium_cnn_desc(k), GpuArch::kTuring)
            .normalized_pct();
    EXPECT_GT(p100, v100);
    EXPECT_GT(v100, t4);
  }
}

TEST(CostModel, MobileNetNearUnityOverhead) {
  // Paper Fig. 8(a): MobileNet ~101% on V100.
  const double pct =
      deterministic_overhead(mobilenet_desc(), GpuArch::kVolta)
          .normalized_pct();
  EXPECT_LT(pct, 115.0);
  EXPECT_GE(pct, 100.0);
}

TEST(CostModel, Vgg19HighestOverheadOnVolta) {
  // Paper Fig. 8(a): VGG-19 has the most significant overhead on all GPUs.
  // Our cost model places VGG-16 within a fraction of a percent of VGG-19
  // (they share the same layer mix), so allow a 2-point tie band.
  const double vgg19 =
      deterministic_overhead(vgg19_desc(), GpuArch::kVolta).normalized_pct();
  for (const NetworkDesc& net : profiled_networks()) {
    const double pct =
        deterministic_overhead(net, GpuArch::kVolta).normalized_pct();
    EXPECT_LE(pct, vgg19 + 2.0) << net.name;
  }
  // And the spread itself must be big: the lightest network sits near 100%.
  const double mobilenet =
      deterministic_overhead(mobilenet_desc(), GpuArch::kVolta)
          .normalized_pct();
  EXPECT_GT(vgg19 - mobilenet, 50.0);
}

TEST(CostModel, LoweringProducesLaunchesForEveryLayer) {
  const CostModel model = CostModel::for_arch(GpuArch::kVolta);
  const NetworkDesc net = medium_cnn_desc(3);
  const auto launches =
      model.lower_step(net, DeterminismMode::kDefault, 64);
  EXPECT_GE(launches.size(), net.layers.size());
  for (const KernelLaunch& launch : launches) {
    EXPECT_GT(launch.time_ms, 0.0) << launch.kernel_type;
  }
}

TEST(CostModel, DeterministicLoweringUsesFewerKernelTypes) {
  // The Fig. 7 skew: deterministic mode concentrates time in fewer kernels.
  const CostModel model = CostModel::for_arch(GpuArch::kVolta);
  const NetworkDesc net = inception_v3_desc();
  auto distinct = [&](DeterminismMode mode) {
    std::set<std::string> names;
    for (const KernelLaunch& l : model.lower_step(net, mode, 64)) {
      names.insert(l.kernel_type);
    }
    return names.size();
  };
  EXPECT_LT(distinct(DeterminismMode::kDeterministic),
            distinct(DeterminismMode::kDefault));
}

}  // namespace
}  // namespace nnr::profiler
