#include "profiler/report.h"

#include <gtest/gtest.h>

namespace nnr::profiler {
namespace {

std::vector<KernelLaunch> sample_launches() {
  return {{"winograd_fwd_3x3", 2.0},
          {"winograd_fwd_3x3", 3.0},
          {"atomic_wgrad", 4.0},
          {"relu_fwd", 0.5}};
}

TEST(Report, AggregatesByType) {
  const auto agg = aggregate_by_type(sample_launches());
  ASSERT_EQ(agg.size(), 3u);
  EXPECT_EQ(agg[0].kernel_type, "winograd_fwd_3x3");
  EXPECT_DOUBLE_EQ(agg[0].total_ms, 5.0);
  EXPECT_EQ(agg[0].launches, 2);
}

TEST(Report, SortedDescending) {
  const auto agg = aggregate_by_type(sample_launches());
  for (std::size_t i = 1; i < agg.size(); ++i) {
    EXPECT_GE(agg[i - 1].total_ms, agg[i].total_ms);
  }
}

TEST(Report, TopKClamps) {
  const auto agg = aggregate_by_type(sample_launches());
  EXPECT_EQ(top_k(agg, 2).size(), 2u);
  EXPECT_EQ(top_k(agg, 100).size(), 3u);
}

TEST(Report, Top1Share) {
  const auto agg = aggregate_by_type(sample_launches());
  EXPECT_NEAR(top1_share(agg), 5.0 / 9.5, 1e-12);
}

TEST(Report, EmptyInput) {
  const auto agg = aggregate_by_type({});
  EXPECT_TRUE(agg.empty());
  EXPECT_EQ(top1_share(agg), 0.0);
}

}  // namespace
}  // namespace nnr::profiler
