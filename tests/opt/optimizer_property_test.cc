// Properties every optimizer must share: convergence on a convex bowl,
// elementwise independence, step counting, and bitwise determinism.
#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "opt/adam.h"
#include "opt/rmsprop.h"
#include "opt/sgd.h"

namespace nnr::opt {
namespace {

using nn::Param;
using tensor::Shape;

struct OptimizerCase {
  std::string name;
  std::function<std::unique_ptr<Optimizer>(std::vector<Param*>)> make;
  float learning_rate;
};

std::vector<OptimizerCase> optimizer_cases() {
  return {
      {"sgd", [](auto p) { return std::make_unique<Sgd>(std::move(p)); },
       0.1F},
      {"sgd_momentum",
       [](auto p) { return std::make_unique<Sgd>(std::move(p), 0.9F); },
       0.02F},
      {"sgd_weight_decay",
       [](auto p) {
         return std::make_unique<Sgd>(std::move(p), 0.0F, 1e-3F);
       },
       0.1F},
      {"adam", [](auto p) { return std::make_unique<Adam>(std::move(p)); },
       0.05F},
      {"adamw",
       [](auto p) {
         AdamConfig cfg;
         cfg.decoupled_weight_decay = 1e-3F;
         return std::make_unique<Adam>(std::move(p), cfg);
       },
       0.05F},
      {"rmsprop",
       [](auto p) { return std::make_unique<RmsProp>(std::move(p)); }, 0.02F},
      {"rmsprop_momentum",
       [](auto p) {
         RmsPropConfig cfg;
         cfg.momentum = 0.9F;
         return std::make_unique<RmsProp>(std::move(p), cfg);
       },
       0.005F},
  };
}

class OptimizerProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  [[nodiscard]] static OptimizerCase current() {
    return optimizer_cases()[GetParam()];
  }
};

TEST_P(OptimizerProperty, ConvergesOnAnisotropicQuadratic) {
  // f(w) = 0.5 (4 w0^2 + w1^2 + 0.25 w2^2): condition number 16.
  const OptimizerCase test_case = current();
  Param p("w", Shape{3});
  p.value.at(0) = 2.0F;
  p.value.at(1) = -4.0F;
  p.value.at(2) = 8.0F;
  auto opt = test_case.make({&p});
  const float curvature[3] = {4.0F, 1.0F, 0.25F};
  for (int step = 0; step < 2000; ++step) {
    for (std::int64_t i = 0; i < 3; ++i) {
      p.grad.at(i) = curvature[i] * p.value.at(i);
    }
    opt->step(test_case.learning_rate);
  }
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(p.value.at(i), 0.0F, 0.1F)
        << test_case.name << " element " << i;
  }
}

TEST_P(OptimizerProperty, UpdatesAreElementwiseIndependent) {
  // Changing one gradient element must not change any other element's
  // update — the "optimizers inject no reduction noise" contract.
  const OptimizerCase test_case = current();
  Param a("a", Shape{4});
  Param b("b", Shape{4});
  for (std::int64_t i = 0; i < 4; ++i) {
    a.value.at(i) = b.value.at(i) = 1.0F + 0.1F * static_cast<float>(i);
  }
  auto opt_a = test_case.make({&a});
  auto opt_b = test_case.make({&b});
  for (std::int64_t i = 0; i < 4; ++i) {
    a.grad.at(i) = 0.3F;
    b.grad.at(i) = 0.3F;
  }
  b.grad.at(2) = -5.0F;  // perturb a single element
  opt_a->step(test_case.learning_rate);
  opt_b->step(test_case.learning_rate);
  for (const std::int64_t i : {0LL, 1LL, 3LL}) {
    EXPECT_EQ(a.value.at(i), b.value.at(i))
        << test_case.name << " element " << i
        << " changed when only element 2's gradient differed";
  }
  EXPECT_NE(a.value.at(2), b.value.at(2));
}

TEST_P(OptimizerProperty, CountsSteps) {
  const OptimizerCase test_case = current();
  Param p("w", Shape{1});
  auto opt = test_case.make({&p});
  EXPECT_EQ(opt->steps_taken(), 0);
  p.grad.at(0) = 1.0F;
  opt->step(0.01F);
  opt->step(0.01F);
  opt->step(0.01F);
  EXPECT_EQ(opt->steps_taken(), 3);
}

TEST_P(OptimizerProperty, IdenticalHistoriesGiveBitwiseIdenticalWeights) {
  const OptimizerCase test_case = current();
  Param a("a", Shape{8});
  Param b("b", Shape{8});
  auto opt_a = test_case.make({&a});
  auto opt_b = test_case.make({&b});
  for (int step = 0; step < 40; ++step) {
    for (std::int64_t i = 0; i < 8; ++i) {
      const float g =
          std::sin(0.37F * static_cast<float>(step) + static_cast<float>(i));
      a.grad.at(i) = g;
      b.grad.at(i) = g;
    }
    opt_a->step(test_case.learning_rate);
    opt_b->step(test_case.learning_rate);
  }
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.value.at(i), b.value.at(i)) << test_case.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptimizers, OptimizerProperty,
    ::testing::Range<std::size_t>(0, optimizer_cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return optimizer_cases()[info.param].name;
    });

}  // namespace
}  // namespace nnr::opt
