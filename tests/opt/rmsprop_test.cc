#include "opt/rmsprop.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nnr::opt {
namespace {

using nn::Param;
using tensor::Shape;

TEST(RmsProp, FirstStepMatchesHandComputation) {
  // Step 1 with grad g: ms = (1-rho) g^2, update = lr g / (sqrt(ms) + eps).
  Param p("w", Shape{1});
  p.value.fill(1.0F);
  p.grad.fill(2.0F);
  RmsPropConfig cfg;
  RmsProp opt({&p}, cfg);
  opt.step(0.1F);
  const float ms = (1.0F - cfg.rho) * 4.0F;
  const float expected = 1.0F - 0.1F * 2.0F / (std::sqrt(ms) + cfg.epsilon);
  EXPECT_FLOAT_EQ(p.value.at(0), expected);
}

TEST(RmsProp, MeanSquareDecaysTowardSquaredGradient) {
  // Under a constant gradient the normalized update approaches lr * sign(g)
  // as the moving average converges to g^2.
  Param p("w", Shape{1});
  p.grad.fill(3.0F);
  RmsProp opt({&p});
  float prev = 0.0F;
  float step_size = 0.0F;
  for (int i = 0; i < 200; ++i) {
    prev = p.value.at(0);
    opt.step(0.01F);
    step_size = prev - p.value.at(0);
  }
  EXPECT_NEAR(step_size, 0.01F, 1e-4F);
}

TEST(RmsProp, MomentumAcceleratesConstantGradient) {
  Param plain("p", Shape{1});
  Param heavy("h", Shape{1});
  plain.grad.fill(1.0F);
  heavy.grad.fill(1.0F);
  RmsPropConfig with_momentum;
  with_momentum.momentum = 0.9F;
  RmsProp a({&plain});
  RmsProp b({&heavy}, with_momentum);
  for (int i = 0; i < 50; ++i) {
    a.step(0.01F);
    b.step(0.01F);
  }
  EXPECT_LT(heavy.value.at(0), plain.value.at(0));
}

TEST(RmsProp, WeightDecayPullsTowardZero) {
  Param p("w", Shape{1});
  p.value.fill(5.0F);
  p.grad.fill(0.0F);
  RmsPropConfig cfg;
  cfg.weight_decay = 0.1F;
  RmsProp opt({&p}, cfg);
  for (int i = 0; i < 100; ++i) opt.step(0.05F);
  EXPECT_LT(p.value.at(0), 5.0F);
  EXPECT_GT(p.value.at(0), 0.0F - 1.0F);
}

TEST(RmsProp, ConvergesOnQuadraticBowl) {
  Param p("w", Shape{2});
  p.value.at(0) = 4.0F;
  p.value.at(1) = -2.0F;
  RmsProp opt({&p});
  for (int step = 0; step < 800; ++step) {
    for (std::int64_t i = 0; i < 2; ++i) p.grad.at(i) = p.value.at(i);
    opt.step(0.02F);
  }
  EXPECT_NEAR(p.value.at(0), 0.0F, 0.05F);
  EXPECT_NEAR(p.value.at(1), 0.0F, 0.05F);
}

TEST(RmsProp, BitwiseDeterministicAcrossInstances) {
  Param a("a", Shape{3});
  Param b("b", Shape{3});
  RmsPropConfig cfg;
  cfg.momentum = 0.5F;
  RmsProp opt_a({&a}, cfg);
  RmsProp opt_b({&b}, cfg);
  for (int step = 0; step < 23; ++step) {
    for (std::int64_t i = 0; i < 3; ++i) {
      const float g = std::sin(0.1F * static_cast<float>(step + i));
      a.grad.at(i) = g;
      b.grad.at(i) = g;
    }
    opt_a.step(0.03F);
    opt_b.step(0.03F);
  }
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.value.at(i), b.value.at(i)) << "element " << i;
  }
}

}  // namespace
}  // namespace nnr::opt
