#include "opt/lr_schedule.h"

#include <gtest/gtest.h>

namespace nnr::opt {
namespace {

TEST(StepDecay, DecaysByFactorEveryPeriod) {
  const StepDecay sched(1.0F, 50, 0.1F);
  EXPECT_FLOAT_EQ(sched.at_epoch(0), 1.0F);
  EXPECT_FLOAT_EQ(sched.at_epoch(49), 1.0F);
  EXPECT_FLOAT_EQ(sched.at_epoch(50), 0.1F);
  EXPECT_FLOAT_EQ(sched.at_epoch(100), 0.01F);
  EXPECT_NEAR(sched.at_epoch(199), 0.001F, 1e-9F);
}

TEST(StepDecay, CustomFactor) {
  const StepDecay sched(0.8F, 2, 0.5F);
  EXPECT_FLOAT_EQ(sched.at_epoch(3), 0.4F);
  EXPECT_FLOAT_EQ(sched.at_epoch(4), 0.2F);
}

TEST(WarmupCosine, WarmupRampsLinearly) {
  const WarmupCosine sched(1.0F, 4, 100);
  EXPECT_FLOAT_EQ(sched.at_epoch(0), 0.125F);
  EXPECT_FLOAT_EQ(sched.at_epoch(1), 0.375F);
  EXPECT_FLOAT_EQ(sched.at_epoch(3), 0.875F);
  EXPECT_FLOAT_EQ(sched.at_epoch(4), 1.0F);  // cosine peak after warmup
}

TEST(WarmupCosine, PeaksAfterWarmup) {
  const WarmupCosine sched(0.1F, 1, 90);
  EXPECT_FLOAT_EQ(sched.at_epoch(1), 0.1F);
}

TEST(WarmupCosine, DecaysToZeroAtEnd) {
  const WarmupCosine sched(0.1F, 1, 90);
  EXPECT_NEAR(sched.at_epoch(90), 0.0F, 1e-6F);
}

TEST(WarmupCosine, MonotoneDecreasingAfterWarmup) {
  const WarmupCosine sched(0.1F, 1, 90);
  float prev = sched.at_epoch(1);
  for (int epoch = 2; epoch <= 90; ++epoch) {
    const float lr = sched.at_epoch(epoch);
    EXPECT_LE(lr, prev);
    prev = lr;
  }
}

}  // namespace
}  // namespace nnr::opt
