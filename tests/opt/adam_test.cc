#include "opt/adam.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace nnr::opt {
namespace {

using nn::Param;
using tensor::Shape;

TEST(Adam, FirstStepMatchesHandComputation) {
  // With constant gradient g, step 1: m_hat = g, v_hat = g^2, so the update
  // is lr * g / (|g| + eps) ~= lr * sign(g) regardless of magnitude.
  Param p("w", Shape{1});
  p.value.fill(1.0F);
  p.grad.fill(0.5F);
  AdamConfig cfg;
  Adam adam({&p}, cfg);
  adam.step(0.1F);
  const float expected =
      1.0F - 0.1F * (0.5F / (std::sqrt(0.25F) + cfg.epsilon));
  EXPECT_FLOAT_EQ(p.value.at(0), expected);
}

TEST(Adam, UpdateMagnitudeIsScaleInvariant) {
  // Adam's signature property: equal-sign gradients of different magnitude
  // produce (nearly) the same first-step update.
  Param small("s", Shape{1});
  Param large("l", Shape{1});
  small.grad.fill(1e-3F);
  large.grad.fill(1e3F);
  Adam a({&small});
  Adam b({&large});
  a.step(0.1F);
  b.step(0.1F);
  EXPECT_NEAR(small.value.at(0), large.value.at(0), 1e-4F);
}

TEST(Adam, SecondStepUsesBiasCorrection) {
  Param p("w", Shape{1});
  p.grad.fill(1.0F);
  AdamConfig cfg;
  cfg.epsilon = 0.0F;
  Adam adam({&p}, cfg);
  adam.step(1.0F);
  adam.step(1.0F);
  // Constant gradient: m_hat = v_hat = 1 exactly at every step (the moving
  // averages and their corrections cancel), so each update is exactly -lr.
  EXPECT_NEAR(p.value.at(0), -2.0F, 1e-5F);
  EXPECT_EQ(adam.steps_taken(), 2);
}

TEST(Adam, CoupledWeightDecayAddsToGradient) {
  Param decayed("d", Shape{1});
  Param plain("p", Shape{1});
  decayed.value.fill(2.0F);
  plain.value.fill(2.0F);
  decayed.grad.fill(0.0F);
  plain.grad.fill(0.0F);
  AdamConfig cfg;
  cfg.weight_decay = 0.1F;
  Adam with_decay({&decayed}, cfg);
  Adam without({&plain});
  with_decay.step(0.01F);
  without.step(0.01F);
  EXPECT_LT(decayed.value.at(0), 2.0F);       // pulled toward zero
  EXPECT_FLOAT_EQ(plain.value.at(0), 2.0F);   // zero grad, zero decay: no-op
}

TEST(Adam, DecoupledDecayShrinksWeightsProportionally) {
  // AdamW with zero gradient reduces to pure exponential shrink:
  // w <- w * (1 - lr * wd) each step.
  Param p("w", Shape{1});
  p.value.fill(4.0F);
  p.grad.fill(0.0F);
  AdamConfig cfg;
  cfg.decoupled_weight_decay = 0.5F;
  Adam adam({&p}, cfg);
  adam.step(0.1F);
  EXPECT_NEAR(p.value.at(0), 4.0F * (1.0F - 0.1F * 0.5F), 1e-6F);
  adam.step(0.1F);
  EXPECT_NEAR(p.value.at(0), 4.0F * 0.95F * 0.95F, 1e-6F);
}

TEST(Adam, BitwiseDeterministicAcrossInstances) {
  // Two optimizers fed identical gradient sequences must produce bitwise
  // identical weights — optimizers are on the deterministic side of the
  // noise contract.
  Param a("a", Shape{4});
  Param b("b", Shape{4});
  for (std::int64_t i = 0; i < 4; ++i) {
    a.value.at(i) = b.value.at(i) = 0.3F * static_cast<float>(i);
  }
  Adam opt_a({&a});
  Adam opt_b({&b});
  for (int step = 0; step < 17; ++step) {
    for (std::int64_t i = 0; i < 4; ++i) {
      const float g = 0.01F * static_cast<float>((step + 1) * (i - 2));
      a.grad.at(i) = g;
      b.grad.at(i) = g;
    }
    opt_a.step(0.05F);
    opt_b.step(0.05F);
  }
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.value.at(i), b.value.at(i)) << "element " << i;
  }
}

TEST(Adam, ConvergesOnQuadraticBowl) {
  // Minimize f(w) = 0.5 * sum(w^2); gradient is w itself.
  Param p("w", Shape{3});
  p.value.at(0) = 5.0F;
  p.value.at(1) = -3.0F;
  p.value.at(2) = 0.7F;
  Adam adam({&p});
  for (int step = 0; step < 500; ++step) {
    for (std::int64_t i = 0; i < 3; ++i) p.grad.at(i) = p.value.at(i);
    adam.step(0.05F);
  }
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(p.value.at(i), 0.0F, 0.05F) << "element " << i;
  }
}

}  // namespace
}  // namespace nnr::opt
