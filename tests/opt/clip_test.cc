#include "opt/clip.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nnr::opt {
namespace {

using nn::Param;
using tensor::Shape;

TEST(GlobalGradNorm, MatchesHandComputedNorm) {
  Param a("a", Shape{2});
  Param b("b", Shape{1});
  a.grad.at(0) = 3.0F;
  a.grad.at(1) = 0.0F;
  b.grad.at(0) = 4.0F;
  EXPECT_DOUBLE_EQ(global_grad_norm({&a, &b}), 5.0);
}

TEST(GlobalGradNorm, EmptyParamListIsZero) {
  EXPECT_DOUBLE_EQ(global_grad_norm({}), 0.0);
}

TEST(ClipGradNorm, BelowThresholdIsUntouched) {
  Param p("w", Shape{2});
  p.grad.at(0) = 0.3F;
  p.grad.at(1) = 0.4F;  // norm 0.5
  const double norm = clip_grad_norm({&p}, 1.0F);
  EXPECT_NEAR(norm, 0.5, 1e-7);  // 0.3F/0.4F are not exactly representable
  EXPECT_FLOAT_EQ(p.grad.at(0), 0.3F);
  EXPECT_FLOAT_EQ(p.grad.at(1), 0.4F);
}

TEST(ClipGradNorm, AboveThresholdRescalesToMaxNorm) {
  Param p("w", Shape{2});
  p.grad.at(0) = 30.0F;
  p.grad.at(1) = 40.0F;  // norm 50
  const double pre = clip_grad_norm({&p}, 5.0F);
  EXPECT_DOUBLE_EQ(pre, 50.0);
  EXPECT_NEAR(p.grad.at(0), 3.0F, 1e-5F);
  EXPECT_NEAR(p.grad.at(1), 4.0F, 1e-5F);
  // Post-clip norm equals the cap.
  EXPECT_NEAR(global_grad_norm({&p}), 5.0, 1e-5);
}

TEST(ClipGradNorm, PreservesGradientDirection) {
  Param p("w", Shape{3});
  p.grad.at(0) = 6.0F;
  p.grad.at(1) = -8.0F;
  p.grad.at(2) = 0.0F;
  clip_grad_norm({&p}, 1.0F);
  // Direction (0.6, -0.8, 0) survives.
  EXPECT_NEAR(p.grad.at(0), 0.6F, 1e-5F);
  EXPECT_NEAR(p.grad.at(1), -0.8F, 1e-5F);
  EXPECT_FLOAT_EQ(p.grad.at(2), 0.0F);
}

TEST(ClipGradNorm, SpansMultipleParams) {
  Param a("a", Shape{1});
  Param b("b", Shape{1});
  a.grad.at(0) = 3.0F;
  b.grad.at(0) = 4.0F;
  clip_grad_norm({&a, &b}, 1.0F);
  EXPECT_NEAR(a.grad.at(0), 0.6F, 1e-5F);
  EXPECT_NEAR(b.grad.at(0), 0.8F, 1e-5F);
}

TEST(ClipGradValue, ClampsSymmetrically) {
  Param p("w", Shape{4});
  p.grad.at(0) = 10.0F;
  p.grad.at(1) = -10.0F;
  p.grad.at(2) = 0.5F;
  p.grad.at(3) = -0.5F;
  clip_grad_value({&p}, 1.0F);
  EXPECT_FLOAT_EQ(p.grad.at(0), 1.0F);
  EXPECT_FLOAT_EQ(p.grad.at(1), -1.0F);
  EXPECT_FLOAT_EQ(p.grad.at(2), 0.5F);
  EXPECT_FLOAT_EQ(p.grad.at(3), -0.5F);
}

TEST(ClipGradNorm, DeterministicAcrossRepeatedCalls) {
  // The clipping reduction runs in fixed parameter order: two identical
  // gradient sets clip to bitwise identical results.
  Param a("a", Shape{5});
  Param b("b", Shape{5});
  for (std::int64_t i = 0; i < 5; ++i) {
    const float g = std::cos(static_cast<float>(i)) * 7.0F;
    a.grad.at(i) = g;
    b.grad.at(i) = g;
  }
  clip_grad_norm({&a}, 2.0F);
  clip_grad_norm({&b}, 2.0F);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.grad.at(i), b.grad.at(i)) << "element " << i;
  }
}

}  // namespace
}  // namespace nnr::opt
