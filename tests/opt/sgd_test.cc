#include "opt/sgd.h"

#include <gtest/gtest.h>

namespace nnr::opt {
namespace {

using nn::Param;
using tensor::Shape;

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Param p("w", Shape{2});
  p.value.fill(1.0F);
  p.grad.fill(0.5F);
  Sgd sgd({&p}, 0.0F);
  sgd.step(0.1F);
  EXPECT_FLOAT_EQ(p.value.at(0), 0.95F);
}

TEST(Sgd, ZeroLearningRateIsNoop) {
  Param p("w", Shape{2});
  p.value.fill(1.0F);
  p.grad.fill(3.0F);
  Sgd sgd({&p}, 0.9F);
  sgd.step(0.0F);
  EXPECT_FLOAT_EQ(p.value.at(0), 1.0F);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Param p("w", Shape{1});
  p.value.fill(0.0F);
  p.grad.fill(1.0F);
  Sgd sgd({&p}, 0.9F);
  sgd.step(1.0F);  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value.at(0), -1.0F);
  sgd.step(1.0F);  // v=0.9*1+1=1.9, w=-2.9
  EXPECT_FLOAT_EQ(p.value.at(0), -2.9F);
}

TEST(Sgd, MomentumZeroMatchesPlainSgd) {
  Param a("a", Shape{1});
  Param b("b", Shape{1});
  a.value.fill(2.0F);
  b.value.fill(2.0F);
  a.grad.fill(0.25F);
  b.grad.fill(0.25F);
  Sgd plain({&a}, 0.0F);
  Sgd with_momentum({&b}, 0.9F);
  plain.step(0.1F);
  with_momentum.step(0.1F);  // first step identical (v starts at 0)
  EXPECT_FLOAT_EQ(a.value.at(0), b.value.at(0));
}

TEST(Sgd, MultipleParams) {
  Param a("a", Shape{1});
  Param b("b", Shape{1});
  a.grad.fill(1.0F);
  b.grad.fill(2.0F);
  Sgd sgd({&a, &b}, 0.0F);
  sgd.step(1.0F);
  EXPECT_FLOAT_EQ(a.value.at(0), -1.0F);
  EXPECT_FLOAT_EQ(b.value.at(0), -2.0F);
}

}  // namespace
}  // namespace nnr::opt
