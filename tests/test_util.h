// Shared helpers for the test suite.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "hw/execution_context.h"
#include "nn/layer.h"
#include "rng/generator.h"
#include "tensor/tensor.h"

namespace nnr::testutil {

/// A deterministic execution context (V100 in deterministic mode) for tests
/// that need reproducible kernel behaviour.
inline hw::ExecutionContext deterministic_context() {
  return hw::ExecutionContext(hw::v100(), hw::DeterminismMode::kDeterministic,
                              rng::Generator(0));
}

/// A nondeterministic context with a given scheduler-entropy seed.
inline hw::ExecutionContext noisy_context(std::uint64_t entropy_seed) {
  return hw::ExecutionContext(hw::v100(), hw::DeterminismMode::kDefault,
                              rng::Generator(entropy_seed));
}

/// Fills a tensor with reproducible pseudo-random values in [-1, 1].
inline void fill_random(tensor::Tensor& t, std::uint64_t seed) {
  rng::Generator gen(seed);
  for (float& v : t.data()) v = gen.uniform(-1.0F, 1.0F);
}

/// Central-difference numerical gradient of a scalar function of `param`.
/// Used to validate every layer's backward pass.
inline std::vector<double> numerical_gradient(
    std::span<float> param, const std::function<double()>& scalar_fn,
    float epsilon = 1e-3F) {
  std::vector<double> grad(param.size());
  for (std::size_t i = 0; i < param.size(); ++i) {
    const float saved = param[i];
    param[i] = saved + epsilon;
    const double up = scalar_fn();
    param[i] = saved - epsilon;
    const double down = scalar_fn();
    param[i] = saved;
    grad[i] = (up - down) / (2.0 * static_cast<double>(epsilon));
  }
  return grad;
}

/// Relative error tolerant comparison for gradient checks: passes when
/// |a-b| <= atol + rtol * max(|a|, |b|).
inline bool close(double a, double b, double rtol = 5e-2, double atol = 1e-3) {
  return std::fabs(a - b) <= atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

}  // namespace nnr::testutil
