// Tests of the reduction-order policies — the IMPL-noise mechanism. These
// pin down the central physical claims: deterministic orders are bitwise
// stable, shuffled orders produce genuine (small) float32 divergence, and
// all orders agree to within rounding.
#include "tensor/accumulate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/generator.h"

namespace nnr::tensor {
namespace {

std::vector<float> awkward_values(std::size_t n, std::uint64_t seed) {
  // Wide dynamic range makes float32 addition visibly non-associative.
  rng::Generator gen(seed);
  std::vector<float> values(n);
  for (float& v : values) {
    v = gen.normal() * std::pow(10.0F, gen.uniform(-3.0F, 3.0F));
  }
  return values;
}

TEST(Accumulate, SequentialIsAFixedFunctionOfLayout) {
  // "Sequential" = the device consumes the buffer in layout order through a
  // fixed accumulator network (the implementation uses a fixed 4-way
  // interleave for ILP). Two reductions of the same buffer must agree
  // bitwise; the value must match the exact sum to rounding.
  const auto values = awkward_values(1000, 1);
  const ReductionPlan a(AccumOrder::kSequential, 1, 1000, nullptr);
  const ReductionPlan b(AccumOrder::kSequential, 1, 1000, nullptr);
  EXPECT_EQ(a.reduce(values), b.reduce(values));
  double exact = 0.0;
  for (float v : values) exact += v;
  EXPECT_NEAR(a.reduce(values), exact, 1e-2 * std::max(1.0, std::fabs(exact)));
}

TEST(Accumulate, SequentialIsSensitiveToInputOrder) {
  // The Fig. 6 mechanism: even a deterministic (layout-order) reduction
  // yields a different float32 value when the inputs are permuted.
  auto values = awkward_values(4096, 42);
  const ReductionPlan plan(AccumOrder::kSequential, 1, 4096, nullptr);
  const float original = plan.reduce(values);
  rng::Generator gen(7);
  bool any_difference = false;
  for (int trial = 0; trial < 8 && !any_difference; ++trial) {
    gen.shuffle(std::span<float>(values));
    any_difference = plan.reduce(values) != original;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Accumulate, PairwiseTreeIsBitwiseReproducible) {
  const auto values = awkward_values(1000, 2);
  const ReductionPlan a(AccumOrder::kPairwiseTree, 32, 1000, nullptr);
  const ReductionPlan b(AccumOrder::kPairwiseTree, 32, 1000, nullptr);
  EXPECT_EQ(a.reduce(values), b.reduce(values));
}

TEST(Accumulate, ShuffledPlansDifferAcrossLaunches) {
  rng::Generator entropy(3);
  const ReductionPlan a(AccumOrder::kShardedShuffled, 16, 64, &entropy);
  const ReductionPlan b(AccumOrder::kShardedShuffled, 16, 64, &entropy);
  EXPECT_NE(std::vector<std::uint32_t>(a.combine_order().begin(),
                                       a.combine_order().end()),
            std::vector<std::uint32_t>(b.combine_order().begin(),
                                       b.combine_order().end()));
}

TEST(Accumulate, ShuffledOrderProducesRoundingDivergence) {
  const auto values = awkward_values(4096, 4);
  rng::Generator entropy(5);
  bool any_difference = false;
  const ReductionPlan reference(AccumOrder::kShardedShuffled, 40, 4096,
                                &entropy);
  const float ref = reference.reduce(values);
  for (int launch = 0; launch < 32 && !any_difference; ++launch) {
    const ReductionPlan plan(AccumOrder::kShardedShuffled, 40, 4096, &entropy);
    any_difference = plan.reduce(values) != ref;
  }
  EXPECT_TRUE(any_difference)
      << "40-lane shuffled reduction never changed the float32 result";
}

TEST(Accumulate, AllOrdersAgreeToRounding) {
  const auto values = awkward_values(2048, 6);
  double exact = 0.0;
  for (float v : values) exact += v;

  rng::Generator entropy(7);
  for (const AccumOrder order :
       {AccumOrder::kSequential, AccumOrder::kPairwiseTree,
        AccumOrder::kShardedShuffled}) {
    const ReductionPlan plan(order, 32, 2048, &entropy);
    const double result = plan.reduce(values);
    EXPECT_NEAR(result, exact, 1e-2 * std::max(1.0, std::fabs(exact)));
  }
}

TEST(Accumulate, DotMatchesManualComputation) {
  std::vector<float> a = {1.0F, 2.0F, 3.0F};
  std::vector<float> b = {4.0F, 5.0F, 6.0F};
  const ReductionPlan plan(AccumOrder::kSequential, 1, 3, nullptr);
  EXPECT_FLOAT_EQ(plan.reduce_dot(a, b), 32.0F);
}

TEST(Accumulate, StridedDotWalksStride) {
  // b laid out with stride 2: use elements 0, 2, 4.
  std::vector<float> a = {1.0F, 1.0F, 1.0F};
  std::vector<float> b = {1.0F, 9.0F, 2.0F, 9.0F, 3.0F};
  const ReductionPlan plan(AccumOrder::kSequential, 1, 3, nullptr);
  EXPECT_FLOAT_EQ(plan.reduce_dot_strided(a.data(), b.data(), 3, 2), 6.0F);
}

TEST(Accumulate, EmptyReductionIsZero) {
  const ReductionPlan plan(AccumOrder::kPairwiseTree, 8, 0, nullptr);
  EXPECT_EQ(plan.reduce({}), 0.0F);
}

TEST(Accumulate, SingleElement) {
  std::vector<float> one = {42.0F};
  const ReductionPlan plan(AccumOrder::kPairwiseTree, 8, 1, nullptr);
  EXPECT_EQ(plan.reduce(one), 42.0F);
}

TEST(Accumulate, LanesClampToElementCount) {
  rng::Generator entropy(8);
  const ReductionPlan plan(AccumOrder::kShardedShuffled, 64, 5, &entropy);
  EXPECT_LE(plan.lanes(), 5);
}

TEST(Accumulate, SequentialForcesSingleLane) {
  const ReductionPlan plan(AccumOrder::kSequential, 64, 100, nullptr);
  EXPECT_EQ(plan.lanes(), 1);
}

TEST(LanesForCores, ScalesWithCoreCount) {
  // More CUDA cores -> more lanes -> more ordering entropy (the V100 vs
  // P100 effect, paper §3.3).
  EXPECT_GT(lanes_for_cores(5120, 1 << 20), lanes_for_cores(3584, 1 << 20));
  EXPECT_GT(lanes_for_cores(3584, 1 << 20), lanes_for_cores(2560, 1 << 20));
}

TEST(LanesForCores, AtLeastOne) {
  EXPECT_EQ(lanes_for_cores(0, 100), 1);
  EXPECT_EQ(lanes_for_cores(64, 100), 1);
}

TEST(LanesForCores, NeverExceedsElements) {
  EXPECT_LE(lanes_for_cores(5120, 7), 7);
}

// Property sweep: every order, every lane count, sums match the exact value
// to float32 rounding accumulation error.
class AccumulatePropertyTest
    : public ::testing::TestWithParam<std::tuple<AccumOrder, int>> {};

TEST_P(AccumulatePropertyTest, SumWithinRoundingOfExact) {
  const auto [order, lanes] = GetParam();
  const auto values = awkward_values(1024, 99);
  double exact = 0.0;
  for (float v : values) exact += v;
  rng::Generator entropy(11);
  const ReductionPlan plan(order, lanes, 1024, &entropy);
  EXPECT_NEAR(plan.reduce(values), exact,
              1e-2 * std::max(1.0, std::fabs(exact)));
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndLanes, AccumulatePropertyTest,
    ::testing::Combine(::testing::Values(AccumOrder::kSequential,
                                         AccumOrder::kPairwiseTree,
                                         AccumOrder::kShardedShuffled),
                       ::testing::Values(1, 2, 7, 16, 40, 128)));

}  // namespace
}  // namespace nnr::tensor
