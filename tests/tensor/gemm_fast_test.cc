// Determinism suite for the blocked GEMM engine and the lowering fast paths.
//
// The contract under test: for the fixed accumulation orders (kSequential,
// kPairwiseTree) the blocked+packed+threaded engine must be *bitwise*
// identical to the seed triple loop (gemm_nt_reference), for every shape —
// including k = 0, k below the unroll width, and m/n that are not multiples
// of the register tile — and for every host thread count. The shuffled order
// must keep the seed loop's behaviour, including its entropy-stream
// consumption (one shuffle draw per launch).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rng/generator.h"
#include "runtime/thread_pool.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/workspace.h"

namespace nnr::tensor {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  rng::Generator gen(seed);
  Tensor t(shape);
  for (float& v : t.data()) v = gen.normal();
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const char* what) {
  ASSERT_EQ(a.numel(), b.numel());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << what << " diverged at flat index " << i;
  }
}

struct GemmCase {
  std::int64_t m, n, k;
};

// Awkward shapes on purpose: k = 0, k below the 4-wide unroll, k with a
// remainder, m/n off the 4x8 tile grid, and one comfortably blocked shape.
const GemmCase kCases[] = {
    {1, 1, 0},  {3, 5, 1},   {4, 8, 3},    {5, 7, 5},    {16, 24, 32},
    {13, 17, 129}, {33, 9, 257}, {64, 64, 64}, {31, 130, 200},
};

TEST(GemmFastPath, BitwiseEqualToReferenceAllDeterministicOrders) {
  const AccumOrder orders[] = {AccumOrder::kSequential,
                               AccumOrder::kPairwiseTree};
  const int core_counts[] = {0, 512, 5120, 100000};  // 1 .. many lanes
  for (const GemmCase& c : kCases) {
    const Tensor a = random_tensor(Shape{c.m, c.k}, 11 + c.m);
    const Tensor b = random_tensor(Shape{c.n, c.k}, 23 + c.n);
    for (AccumOrder order : orders) {
      for (int cores : core_counts) {
        const KernelPolicy policy{
            .order = order, .cuda_cores = cores, .entropy = nullptr};
        Tensor fast(Shape{c.m, c.n});
        Tensor ref(Shape{c.m, c.n});
        gemm_nt(a, b, fast, policy);
        gemm_nt_reference(a, b, ref, policy);
        expect_bitwise_equal(fast, ref, "gemm fast path");
      }
    }
  }
}

TEST(GemmFastPath, ShuffledOrderKeepsSeedSemanticsAndEntropyStream) {
  const Tensor a = random_tensor(Shape{12, 300}, 31);
  const Tensor b = random_tensor(Shape{16, 300}, 37);
  rng::Generator entropy_fast(99);
  rng::Generator entropy_ref(99);
  const KernelPolicy fast_policy{.order = AccumOrder::kShardedShuffled,
                                 .cuda_cores = 5120,
                                 .entropy = &entropy_fast};
  const KernelPolicy ref_policy{.order = AccumOrder::kShardedShuffled,
                                .cuda_cores = 5120,
                                .entropy = &entropy_ref};
  Tensor fast(Shape{12, 16});
  Tensor ref(Shape{12, 16});
  gemm_nt(a, b, fast, fast_policy);
  gemm_nt_reference(a, b, ref, ref_policy);
  expect_bitwise_equal(fast, ref, "shuffled gemm");
  // Identical per-launch shuffle consumption: the streams must stay in
  // lockstep after the launch (the IMPL noise model depends on it).
  EXPECT_EQ(entropy_fast.next_u32(), entropy_ref.next_u32());
}

TEST(GemmFastPath, InvariantToHostThreadCount) {
  const Tensor a = random_tensor(Shape{65, 200}, 41);
  const Tensor b = random_tensor(Shape{130, 200}, 43);
  const KernelPolicy policy{.order = AccumOrder::kPairwiseTree,
                            .cuda_cores = 5120,
                            .entropy = nullptr};
  runtime::ThreadPool::set_global_threads(1);
  Tensor c1(Shape{65, 130});
  gemm_nt(a, b, c1, policy);
  runtime::ThreadPool::set_global_threads(4);
  Tensor c4(Shape{65, 130});
  gemm_nt(a, b, c4, policy);
  runtime::ThreadPool::set_global_threads(0);  // restore env default
  expect_bitwise_equal(c1, c4, "gemm across NNR_THREADS");
}

TEST(TransposeTiled, MatchesNaiveOnOddShapes) {
  const GemmCase shapes[] = {{1, 1, 0}, {7, 3, 0}, {33, 65, 0}, {129, 50, 0}};
  for (const GemmCase& s : shapes) {
    const Tensor in = random_tensor(Shape{s.m, s.n}, 53 + s.m);
    Tensor out(Shape{s.n, s.m});
    transpose(in, out);
    for (std::int64_t i = 0; i < s.m; ++i) {
      for (std::int64_t j = 0; j < s.n; ++j) {
        ASSERT_EQ(out.at(j, i), in.at(i, j));
      }
    }
  }
}

// Seed im2col semantics, restated element-by-element.
void im2col_naive(const Tensor& input, const ConvGeometry& g, Tensor& cols) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  std::int64_t row = 0;
  float* dst = cols.raw();
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++dst) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              const bool inside =
                  iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w;
              *dst = inside ? input.at(n, c, iy, ix) : 0.0F;
            }
          }
        }
      }
    }
  }
}

// Seed col2im semantics: scatter-add in (n, oy, ox, c, ky, kx) order.
void col2im_naive(const Tensor& cols, const ConvGeometry& g, Tensor& grad) {
  grad.fill(0.0F);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const float* src = cols.raw();
  std::int64_t row = 0;
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox, ++row) {
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
            const std::int64_t iy = oy * g.stride + ky - g.pad;
            for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++src) {
              const std::int64_t ix = ox * g.stride + kx - g.pad;
              if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
                grad.at(n, c, iy, ix) += *src;
              }
            }
          }
        }
      }
    }
  }
}

TEST(Im2colFastPath, BitwiseEqualToNaiveAcrossGeometries) {
  const std::int64_t kernels[] = {1, 3, 5};
  const std::int64_t strides[] = {1, 2};
  const std::int64_t pads[] = {0, 1, 2};
  for (std::int64_t kernel : kernels) {
    for (std::int64_t stride : strides) {
      for (std::int64_t pad : pads) {
        const ConvGeometry g{.batch = 2,
                             .in_channels = 3,
                             .in_h = 11,
                             .in_w = 9,
                             .kernel = kernel,
                             .stride = stride,
                             .pad = pad};
        if (g.out_h() <= 0 || g.out_w() <= 0) continue;
        const Tensor input =
            random_tensor(Shape{g.batch, g.in_channels, g.in_h, g.in_w},
                          61 + static_cast<std::uint64_t>(kernel * 10 + pad));
        Tensor cols(Shape{g.out_pixels(), g.patch_size()});
        Tensor cols_naive(Shape{g.out_pixels(), g.patch_size()});
        im2col(input, g, cols);
        im2col_naive(input, g, cols_naive);
        expect_bitwise_equal(cols, cols_naive, "im2col");

        Tensor grad(Shape{g.batch, g.in_channels, g.in_h, g.in_w});
        Tensor grad_naive(Shape{g.batch, g.in_channels, g.in_h, g.in_w});
        col2im(cols, g, grad);
        col2im_naive(cols, g, grad_naive);
        expect_bitwise_equal(grad, grad_naive, "col2im");
      }
    }
  }
}

TEST(Im2colFastPath, InvariantToHostThreadCount) {
  const ConvGeometry g{.batch = 3,
                       .in_channels = 4,
                       .in_h = 16,
                       .in_w = 16,
                       .kernel = 3,
                       .stride = 1,
                       .pad = 1};
  const Tensor input =
      random_tensor(Shape{g.batch, g.in_channels, g.in_h, g.in_w}, 71);
  runtime::ThreadPool::set_global_threads(1);
  Tensor cols1(Shape{g.out_pixels(), g.patch_size()});
  im2col(input, g, cols1);
  Tensor grad1(Shape{g.batch, g.in_channels, g.in_h, g.in_w});
  col2im(cols1, g, grad1);
  runtime::ThreadPool::set_global_threads(4);
  Tensor cols4(Shape{g.out_pixels(), g.patch_size()});
  im2col(input, g, cols4);
  Tensor grad4(Shape{g.batch, g.in_channels, g.in_h, g.in_w});
  col2im(cols4, g, grad4);
  runtime::ThreadPool::set_global_threads(0);
  expect_bitwise_equal(cols1, cols4, "im2col across NNR_THREADS");
  expect_bitwise_equal(grad1, grad4, "col2im across NNR_THREADS");
}

TEST(Workspace, ReusesStorageForEqualElementCounts) {
  Workspace ws;
  const int owner = 0;
  Tensor& t1 = ws.scratch(&owner, 0, Shape{4, 8});
  t1.fill(7.0F);
  const float* data1 = t1.raw();
  // Same element count, different shape: storage (and contents) persist.
  Tensor& t2 = ws.scratch(&owner, 0, Shape{8, 4});
  EXPECT_EQ(t2.raw(), data1);
  EXPECT_EQ(t2.at(0), 7.0F);
  EXPECT_EQ(t2.shape(), (Shape{8, 4}));
  // Different element count: reallocated and zeroed.
  Tensor& t3 = ws.scratch(&owner, 0, Shape{3, 3});
  EXPECT_EQ(t3.numel(), 9);
  EXPECT_EQ(t3.at(0), 0.0F);
  // Distinct slots are distinct tensors.
  Tensor& other = ws.scratch(&owner, 1, Shape{3, 3});
  EXPECT_NE(other.raw(), t3.raw());
  EXPECT_EQ(ws.slot_count(), 2U);
}

}  // namespace
}  // namespace nnr::tensor
