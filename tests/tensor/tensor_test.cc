#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace nnr::tensor {
namespace {

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{3, 4});
  for (float v : t.data()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, FullFillsValue) {
  const Tensor t = Tensor::full(Shape{2, 2}, 1.5F);
  for (float v : t.data()) EXPECT_EQ(v, 1.5F);
}

TEST(Tensor, Rank2Indexing) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0F;
  EXPECT_EQ(t.at(1 * 3 + 2), 7.0F);
}

TEST(Tensor, Rank4IndexingRowMajorNchw) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0F;
  EXPECT_EQ(t.at(((1 * 3 + 2) * 4 + 3) * 5 + 4), 9.0F);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 6});
  t.at(0, 5) = 3.0F;
  t.reshape(Shape{3, 4});
  EXPECT_EQ(t.at(1, 1), 3.0F);  // flat index 5
  EXPECT_EQ(t.shape(), (Shape{3, 4}));
}

TEST(Tensor, CopyIsDeep) {
  Tensor a(Shape{4});
  a.at(0) = 1.0F;
  Tensor b = a;
  b.at(0) = 2.0F;
  EXPECT_EQ(a.at(0), 1.0F);
}

TEST(Tensor, EmptyDefault) {
  const Tensor t;
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, FillOverwrites) {
  Tensor t = Tensor::full(Shape{5}, 2.0F);
  t.fill(-1.0F);
  for (float v : t.data()) EXPECT_EQ(v, -1.0F);
}

TEST(Tensor, ConstructFromVector) {
  const Tensor t(Shape{2, 2}, {1.0F, 2.0F, 3.0F, 4.0F});
  EXPECT_EQ(t.at(1, 1), 4.0F);
}

}  // namespace
}  // namespace nnr::tensor
