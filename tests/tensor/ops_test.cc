#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <vector>

namespace nnr::tensor {
namespace {

TEST(Ops, Axpy) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 20, 30};
  axpy(2.0F, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0F);
  EXPECT_FLOAT_EQ(y[2], 36.0F);
}

TEST(Ops, Scale) {
  std::vector<float> x = {2, -4};
  scale(x, 0.5F);
  EXPECT_FLOAT_EQ(x[0], 1.0F);
  EXPECT_FLOAT_EQ(x[1], -2.0F);
}

TEST(Ops, CopyInto) {
  std::vector<float> src = {1, 2};
  std::vector<float> dst = {0, 0};
  copy_into(src, dst);
  EXPECT_EQ(dst[1], 2.0F);
}

TEST(Ops, SquaredNorm) {
  std::vector<float> x = {3, 4};
  EXPECT_DOUBLE_EQ(squared_norm(x), 25.0);
}

TEST(Ops, ArgmaxFirstOccurrence) {
  std::vector<float> x = {1, 5, 5, 2};
  EXPECT_EQ(argmax(x), 1);
}

TEST(Ops, ArgmaxNegativeValues) {
  std::vector<float> x = {-3, -1, -2};
  EXPECT_EQ(argmax(x), 1);
}

TEST(Ops, ArgmaxSingle) {
  std::vector<float> x = {7};
  EXPECT_EQ(argmax(x), 0);
}

}  // namespace
}  // namespace nnr::tensor
