#include "tensor/shape.h"

#include <gtest/gtest.h>

namespace nnr::tensor {
namespace {

TEST(Shape, DefaultIsScalarLike) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, RankAndDims) {
  const Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[3], 5);
}

TEST(Shape, Numel) {
  EXPECT_EQ((Shape{2, 3}).numel(), 6);
  EXPECT_EQ((Shape{7}).numel(), 7);
  EXPECT_EQ((Shape{4, 4, 4, 4}).numel(), 256);
}

TEST(Shape, ZeroDimGivesZeroNumel) {
  EXPECT_EQ((Shape{0, 5}).numel(), 0);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_FALSE((Shape{2, 3}) == (Shape{3, 2}));
  EXPECT_FALSE((Shape{2, 3}) == (Shape{2, 3, 1}));
}

TEST(Shape, ToString) {
  EXPECT_EQ((Shape{1, 2, 3}).to_string(), "[1, 2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

}  // namespace
}  // namespace nnr::tensor
