#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include "rng/generator.h"

namespace nnr::tensor {
namespace {

KernelPolicy sequential_policy() {
  return {.order = AccumOrder::kSequential, .cuda_cores = 0, .entropy = nullptr};
}

TEST(GemmNt, SmallKnownResult) {
  // A = [[1,2],[3,4]], B = [[5,6],[7,8]]; C = A * B^T.
  const Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor b(Shape{2, 2}, {5, 6, 7, 8});
  Tensor c(Shape{2, 2});
  gemm_nt(a, b, c, sequential_policy());
  EXPECT_FLOAT_EQ(c.at(0, 0), 17.0F);  // 1*5+2*6
  EXPECT_FLOAT_EQ(c.at(0, 1), 23.0F);  // 1*7+2*8
  EXPECT_FLOAT_EQ(c.at(1, 0), 39.0F);
  EXPECT_FLOAT_EQ(c.at(1, 1), 53.0F);
}

TEST(GemmNt, IdentityRight) {
  const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor eye(Shape{3, 3}, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  Tensor c(Shape{2, 3});
  gemm_nt(a, eye, c, sequential_policy());
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(c.at(i), a.at(i));
}

TEST(GemmNt, AgreesWithDoubleReference) {
  rng::Generator gen(1);
  Tensor a(Shape{7, 33});
  Tensor b(Shape{5, 33});
  for (float& v : a.data()) v = gen.uniform(-1.0F, 1.0F);
  for (float& v : b.data()) v = gen.uniform(-1.0F, 1.0F);
  Tensor c(Shape{7, 5});
  gemm_nt(a, b, c, sequential_policy());
  for (std::int64_t i = 0; i < 7; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      double ref = 0.0;
      for (std::int64_t k = 0; k < 33; ++k) {
        ref += static_cast<double>(a.at(i, k)) * b.at(j, k);
      }
      EXPECT_NEAR(c.at(i, j), ref, 1e-4);
    }
  }
}

TEST(GemmNt, DeterministicPolicyIsBitwiseStable) {
  rng::Generator gen(2);
  Tensor a(Shape{8, 256});
  Tensor b(Shape{8, 256});
  for (float& v : a.data()) v = gen.normal();
  for (float& v : b.data()) v = gen.normal();
  const KernelPolicy det{.order = AccumOrder::kPairwiseTree,
                         .cuda_cores = 5120,
                         .entropy = nullptr};
  Tensor c1(Shape{8, 8});
  Tensor c2(Shape{8, 8});
  gemm_nt(a, b, c1, det);
  gemm_nt(a, b, c2, det);
  for (std::int64_t i = 0; i < c1.numel(); ++i) {
    EXPECT_EQ(c1.at(i), c2.at(i));
  }
}

TEST(GemmNt, ShuffledPolicyDivergesAcrossLaunches) {
  rng::Generator gen(3);
  Tensor a(Shape{4, 4096});
  Tensor b(Shape{4, 4096});
  for (float& v : a.data()) v = gen.normal();
  for (float& v : b.data()) v = gen.normal();
  rng::Generator entropy(4);
  const KernelPolicy noisy{.order = AccumOrder::kShardedShuffled,
                           .cuda_cores = 5120,
                           .entropy = &entropy};
  Tensor c1(Shape{4, 4});
  Tensor c2(Shape{4, 4});
  gemm_nt(a, b, c1, noisy);
  gemm_nt(a, b, c2, noisy);
  bool any_diff = false;
  for (std::int64_t i = 0; i < c1.numel(); ++i) {
    if (c1.at(i) != c2.at(i)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Transpose, RoundTrip) {
  rng::Generator gen(5);
  Tensor a(Shape{6, 9});
  for (float& v : a.data()) v = gen.uniform(-1.0F, 1.0F);
  Tensor t(Shape{9, 6});
  transpose(a, t);
  Tensor back(Shape{6, 9});
  transpose(t, back);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(back.at(i), a.at(i));
}

TEST(Transpose, Values) {
  const Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t(Shape{3, 2});
  transpose(a, t);
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.0F);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3.0F);
}

TEST(ReduceSum, MatchesLoop) {
  std::vector<float> values = {1.5F, -2.0F, 3.25F, 0.25F};
  EXPECT_FLOAT_EQ(reduce_sum(values, sequential_policy()), 3.0F);
}

TEST(ReduceRows, PerRowSums) {
  const Tensor m(Shape{2, 3}, {1, 2, 3, 10, 20, 30});
  std::vector<float> sums(2);
  reduce_rows(m, sums, sequential_policy());
  EXPECT_FLOAT_EQ(sums[0], 6.0F);
  EXPECT_FLOAT_EQ(sums[1], 60.0F);
}

}  // namespace
}  // namespace nnr::tensor
