#include "tensor/precision.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/generator.h"

namespace nnr::tensor {
namespace {

TEST(Precision, Float32IsIdentity) {
  for (float v : {0.0F, 1.0F, -3.14159F, 1e-30F, 1e30F}) {
    EXPECT_EQ(quantize(v, Precision::kFloat32), v);
  }
}

TEST(Precision, Bfloat16KeepsSevenMantissaBits) {
  // 1 + 2^-7 is representable in bfloat16; 1 + 2^-8 rounds to 1 or 1+2^-7.
  const float exact = 1.0F + 0.0078125F;
  EXPECT_EQ(quantize(exact, Precision::kBfloat16), exact);
  const float off_grid = 1.0F + 0.00390625F;  // 1 + 2^-8: halfway, ties-even
  EXPECT_EQ(quantize(off_grid, Precision::kBfloat16), 1.0F);
}

TEST(Precision, Float16KeepsTenMantissaBits) {
  const float exact = 1.0F + 0.0009765625F;  // 1 + 2^-10
  EXPECT_EQ(quantize(exact, Precision::kFloat16), exact);
}

TEST(Precision, Float16Clamps) {
  EXPECT_TRUE(std::isinf(quantize(1e6F, Precision::kFloat16)));
  EXPECT_TRUE(std::isinf(quantize(-1e6F, Precision::kFloat16)));
  EXPECT_FALSE(std::isinf(quantize(60000.0F, Precision::kFloat16)));
}

TEST(Precision, QuantizationIsIdempotent) {
  rng::Generator gen(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = gen.normal() * 10.0F;
    for (const Precision p :
         {Precision::kBfloat16, Precision::kFloat16}) {
      const float once = quantize(v, p);
      EXPECT_EQ(quantize(once, p), once);
    }
  }
}

TEST(Precision, SignSymmetry) {
  rng::Generator gen(2);
  for (int i = 0; i < 200; ++i) {
    const float v = gen.normal();
    for (const Precision p : {Precision::kBfloat16, Precision::kFloat16}) {
      EXPECT_EQ(quantize(-v, p), -quantize(v, p));
    }
  }
}

TEST(Precision, UlpOrdering) {
  EXPECT_LT(ulp_at_one(Precision::kFloat32),
            ulp_at_one(Precision::kFloat16));
  EXPECT_LT(ulp_at_one(Precision::kFloat16),
            ulp_at_one(Precision::kBfloat16));
}

TEST(Precision, QuantizedSumErrorGrowsWithCoarserGrid) {
  rng::Generator gen(3);
  std::vector<float> values(4096);
  for (float& v : values) v = gen.normal();
  double exact = 0.0;
  for (float v : values) exact += v;

  const double err32 = std::fabs(
      reduce_sum_quantized(values, Precision::kFloat32) - exact);
  const double err16 = std::fabs(
      reduce_sum_quantized(values, Precision::kFloat16) - exact);
  const double err_bf = std::fabs(
      reduce_sum_quantized(values, Precision::kBfloat16) - exact);
  EXPECT_LE(err32, err16);
  EXPECT_LE(err16, err_bf);
}

TEST(Precision, QuantizedSumIsOrderSensitive) {
  // The tooling-noise story at low precision: reordering changes results by
  // whole grid steps, not just float32 ulps.
  rng::Generator gen(4);
  std::vector<float> values(1024);
  for (float& v : values) v = gen.normal();
  const float forward = reduce_sum_quantized(values, Precision::kFloat16);
  std::vector<float> reversed(values.rbegin(), values.rend());
  const float backward = reduce_sum_quantized(reversed, Precision::kFloat16);
  EXPECT_NE(forward, backward);
}

}  // namespace
}  // namespace nnr::tensor
