#include "tensor/im2col.h"

#include <gtest/gtest.h>

namespace nnr::tensor {
namespace {

TEST(ConvGeometry, OutputDims) {
  const ConvGeometry g{.batch = 1,
                       .in_channels = 3,
                       .in_h = 16,
                       .in_w = 16,
                       .kernel = 3,
                       .stride = 1,
                       .pad = 1};
  EXPECT_EQ(g.out_h(), 16);
  EXPECT_EQ(g.out_w(), 16);
  EXPECT_EQ(g.patch_size(), 27);
  EXPECT_EQ(g.out_pixels(), 256);
}

TEST(ConvGeometry, StridedOutputDims) {
  const ConvGeometry g{.batch = 2,
                       .in_channels = 8,
                       .in_h = 8,
                       .in_w = 8,
                       .kernel = 3,
                       .stride = 2,
                       .pad = 1};
  EXPECT_EQ(g.out_h(), 4);
  EXPECT_EQ(g.out_w(), 4);
}

TEST(Im2col, Identity1x1) {
  const ConvGeometry g{.batch = 1,
                       .in_channels = 2,
                       .in_h = 2,
                       .in_w = 2,
                       .kernel = 1,
                       .stride = 1,
                       .pad = 0};
  Tensor x(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor cols(Shape{4, 2});
  im2col(x, g, cols);
  // Pixel (0,0): channels (1, 5); pixel (1,1): channels (4, 8).
  EXPECT_FLOAT_EQ(cols.at(0, 0), 1.0F);
  EXPECT_FLOAT_EQ(cols.at(0, 1), 5.0F);
  EXPECT_FLOAT_EQ(cols.at(3, 0), 4.0F);
  EXPECT_FLOAT_EQ(cols.at(3, 1), 8.0F);
}

TEST(Im2col, PaddingReadsZero) {
  const ConvGeometry g{.batch = 1,
                       .in_channels = 1,
                       .in_h = 2,
                       .in_w = 2,
                       .kernel = 3,
                       .stride = 1,
                       .pad = 1};
  Tensor x(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor cols(Shape{4, 9});
  im2col(x, g, cols);
  // Top-left output pixel: the 3x3 patch centered at (0,0); corners outside.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0F);  // (-1,-1)
  EXPECT_FLOAT_EQ(cols.at(0, 4), 1.0F);  // center (0,0)
  EXPECT_FLOAT_EQ(cols.at(0, 5), 2.0F);  // (0,1)
  EXPECT_FLOAT_EQ(cols.at(0, 8), 4.0F);  // (1,1)
}

TEST(Im2col, StrideSkipsPixels) {
  const ConvGeometry g{.batch = 1,
                       .in_channels = 1,
                       .in_h = 4,
                       .in_w = 4,
                       .kernel = 1,
                       .stride = 2,
                       .pad = 0};
  Tensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x.at(i) = static_cast<float>(i);
  Tensor cols(Shape{4, 1});
  im2col(x, g, cols);
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(cols.at(1, 0), 2.0F);
  EXPECT_FLOAT_EQ(cols.at(2, 0), 8.0F);
  EXPECT_FLOAT_EQ(cols.at(3, 0), 10.0F);
}

TEST(Col2im, InverseOfIm2colForDisjointPatches) {
  // kernel=2, stride=2: patches tile the input exactly once, so
  // col2im(im2col(x)) == x.
  const ConvGeometry g{.batch = 1,
                       .in_channels = 1,
                       .in_h = 4,
                       .in_w = 4,
                       .kernel = 2,
                       .stride = 2,
                       .pad = 0};
  Tensor x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x.at(i) = static_cast<float>(i + 1);
  Tensor cols(Shape{4, 4});
  im2col(x, g, cols);
  Tensor back(Shape{1, 1, 4, 4});
  col2im(cols, g, back);
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(back.at(i), x.at(i));
}

TEST(Col2im, OverlappingPatchesAccumulate) {
  // kernel=3, stride=1, pad=1 over constant-one cols: each input pixel
  // receives one contribution per patch covering it (9 in the interior).
  const ConvGeometry g{.batch = 1,
                       .in_channels = 1,
                       .in_h = 5,
                       .in_w = 5,
                       .kernel = 3,
                       .stride = 1,
                       .pad = 1};
  Tensor cols = Tensor::full(Shape{25, 9}, 1.0F);
  Tensor grad(Shape{1, 1, 5, 5});
  col2im(cols, g, grad);
  EXPECT_FLOAT_EQ(grad.at(0, 0, 2, 2), 9.0F);  // interior
  EXPECT_FLOAT_EQ(grad.at(0, 0, 0, 0), 4.0F);  // corner
  EXPECT_FLOAT_EQ(grad.at(0, 0, 0, 2), 6.0F);  // edge
}

TEST(Im2col, MultiBatchLayout) {
  const ConvGeometry g{.batch = 2,
                       .in_channels = 1,
                       .in_h = 2,
                       .in_w = 2,
                       .kernel = 1,
                       .stride = 1,
                       .pad = 0};
  Tensor x(Shape{2, 1, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor cols(Shape{8, 1});
  im2col(x, g, cols);
  EXPECT_FLOAT_EQ(cols.at(4, 0), 5.0F);  // first pixel of example 1
}

}  // namespace
}  // namespace nnr::tensor
