// Kahan compensated summation: accuracy and order-insensitivity properties
// (the "numerical mitigation" alternative to deterministic kernels).
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rng/generator.h"
#include "tensor/precision.h"

namespace nnr::tensor {
namespace {

TEST(Kahan, ExactOnRepresentableData) {
  const std::vector<float> values = {1.0F, 2.0F, 3.0F, 4.0F};
  EXPECT_FLOAT_EQ(reduce_sum_kahan(values), 10.0F);
}

TEST(Kahan, RecoversSmallAddendsLostByNaiveSum) {
  // 1.0 followed by many tiny values that individually vanish against the
  // accumulator: naive float32 drops them, Kahan keeps them.
  std::vector<float> values(10001, 1e-8F);
  values[0] = 1.0F;
  const double exact = 1.0 + 1e-8 * 10000.0;

  float naive = 0.0F;
  for (const float v : values) naive += v;
  const float kahan = reduce_sum_kahan(values);

  EXPECT_LT(std::fabs(kahan - exact), std::fabs(naive - exact));
  // Kahan is correct to ~1 float32 ULP of the exact sum (the float32 input
  // 1e-8F itself carries representation error, so exact-to-double is out of
  // reach by construction).
  EXPECT_NEAR(kahan, exact, 1.2e-7);
}

TEST(Kahan, MoreAccurateThanNaiveOnGradientScaleData) {
  rng::Generator gen(42);
  std::vector<float> values(1 << 16);
  for (float& v : values) v = 1e-3F * gen.normal();
  double exact = 0.0;
  for (const float v : values) exact += v;

  float naive = 0.0F;
  for (const float v : values) naive += v;
  const float kahan = reduce_sum_kahan(values);

  EXPECT_LE(std::fabs(kahan - exact), std::fabs(naive - exact));
}

TEST(Kahan, PermutedVariantsMatchSequentialOnIdentityOrder) {
  rng::Generator gen(7);
  std::vector<float> values(257);
  for (float& v : values) v = gen.uniform(-1.0F, 1.0F);
  std::vector<std::uint32_t> identity(values.size());
  std::iota(identity.begin(), identity.end(), 0U);

  float naive = 0.0F;
  for (const float v : values) naive += v;
  EXPECT_EQ(reduce_sum_permuted(values, identity), naive);
  EXPECT_EQ(reduce_sum_kahan_permuted(values, identity),
            reduce_sum_kahan(values));
}

TEST(Kahan, OrderSpreadCollapsesRelativeToNaiveSum) {
  // The mitigation claim: across many visiting orders, Kahan produces far
  // fewer distinct float32 results (usually exactly one) than the naive
  // sum over the same orders.
  rng::Generator gen(0xFEED);
  std::vector<float> values(1 << 14);
  for (float& v : values) v = 1e-3F * gen.normal();

  rng::Generator shuffler(3);
  std::set<float> naive_results;
  std::set<float> kahan_results;
  std::vector<std::uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0U);
  for (int trial = 0; trial < 32; ++trial) {
    shuffler.shuffle(std::span<std::uint32_t>(order));
    naive_results.insert(reduce_sum_permuted(values, order));
    kahan_results.insert(reduce_sum_kahan_permuted(values, order));
  }
  EXPECT_GT(naive_results.size(), 1u)
      << "naive float32 sum unexpectedly order-insensitive";
  EXPECT_LT(kahan_results.size(), naive_results.size());
  // Spread in value terms: Kahan's max-min is no larger than naive's.
  const float naive_spread = *naive_results.rbegin() - *naive_results.begin();
  const float kahan_spread = *kahan_results.rbegin() - *kahan_results.begin();
  EXPECT_LE(kahan_spread, naive_spread);
}

TEST(Kahan, HandlesEmptyAndSingleton) {
  EXPECT_EQ(reduce_sum_kahan({}), 0.0F);
  const std::vector<float> one = {3.5F};
  EXPECT_EQ(reduce_sum_kahan(one), 3.5F);
}

}  // namespace
}  // namespace nnr::tensor
