#include "rng/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace nnr::rng {
namespace {

TEST(Generator, UniformInUnitInterval) {
  Generator gen(1);
  for (int i = 0; i < 10000; ++i) {
    const float u = gen.uniform();
    EXPECT_GE(u, 0.0F);
    EXPECT_LT(u, 1.0F);
  }
}

TEST(Generator, UniformMeanIsHalf) {
  Generator gen(2);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += gen.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Generator, UniformRangeRespectsBounds) {
  Generator gen(3);
  for (int i = 0; i < 1000; ++i) {
    const float u = gen.uniform(-2.5F, 7.5F);
    EXPECT_GE(u, -2.5F);
    EXPECT_LT(u, 7.5F);
  }
}

TEST(Generator, UniformIntIsInRange) {
  Generator gen(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.uniform_int(13), 13u);
  }
}

TEST(Generator, UniformIntCoversAllValues) {
  Generator gen(5);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    ++counts[gen.uniform_int(7)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

TEST(Generator, NormalMomentsMatch) {
  Generator gen(6);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = gen.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Generator, ScaledNormalMoments) {
  Generator gen(7);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += gen.normal(3.0F, 0.5F);
  EXPECT_NEAR(sum / kDraws, 3.0, 0.02);
}

TEST(Generator, BernoulliRate) {
  Generator gen(8);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.bernoulli(0.3F)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Generator, PermutationIsAPermutation) {
  Generator gen(9);
  const auto perm = gen.permutation(257);
  std::vector<bool> seen(257, false);
  for (std::uint32_t v : perm) {
    ASSERT_LT(v, 257u);
    EXPECT_FALSE(seen[v]) << "duplicate index " << v;
    seen[v] = true;
  }
}

TEST(Generator, PermutationVariesWithSeed) {
  Generator a(10);
  Generator b(11);
  EXPECT_NE(a.permutation(64), b.permutation(64));
}

TEST(Generator, PermutationReproducible) {
  Generator a(12);
  Generator b(12);
  EXPECT_EQ(a.permutation(64), b.permutation(64));
}

TEST(Generator, ShuffleKeepsElements) {
  Generator gen(13);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  gen.shuffle(std::span<int>(shuffled));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

}  // namespace
}  // namespace nnr::rng
