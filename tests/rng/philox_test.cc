#include "rng/philox.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nnr::rng {
namespace {

TEST(Philox, BijectionIsDeterministic) {
  const Counter4x32 ctr{1, 2, 3, 4};
  const Key2x32 key{5, 6};
  EXPECT_EQ(philox4x32_10(ctr, key), philox4x32_10(ctr, key));
}

TEST(Philox, DifferentCountersProduceDifferentBlocks) {
  const Key2x32 key{42, 99};
  const auto a = philox4x32_10({0, 0, 0, 0}, key);
  const auto b = philox4x32_10({1, 0, 0, 0}, key);
  EXPECT_NE(a, b);
}

TEST(Philox, DifferentKeysProduceDifferentBlocks) {
  const Counter4x32 ctr{7, 7, 7, 7};
  EXPECT_NE(philox4x32_10(ctr, {1, 0}), philox4x32_10(ctr, {2, 0}));
}

TEST(Philox, StreamIsReproducible) {
  Philox a(1234, 5);
  Philox b(1234, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Philox, DistinctSeedsDiverge) {
  Philox a(1);
  Philox b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Philox, DistinctStreamsDiverge) {
  Philox a(1, 0);
  Philox b(1, 1);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Philox, SkipBlocksMatchesSequentialConsumption) {
  Philox sequential(77);
  for (int i = 0; i < 4 * 10; ++i) sequential();  // consume 10 blocks

  Philox skipped(77);
  skipped.skip_blocks(10);
  EXPECT_EQ(sequential(), skipped());
}

TEST(Philox, Next64CombinesTwoWords) {
  Philox a(5);
  Philox b(5);
  const std::uint64_t lo = a();
  const std::uint64_t hi = a();
  EXPECT_EQ(b.next_u64(), lo | (hi << 32));
}

TEST(Philox, OutputLooksUniform) {
  // Coarse bucket test: 64k draws into 16 buckets should be near-uniform.
  Philox gen(2024);
  std::vector<int> buckets(16, 0);
  constexpr int kDraws = 1 << 16;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[gen() >> 28];
  }
  const double expected = kDraws / 16.0;
  for (int count : buckets) {
    EXPECT_NEAR(count, expected, 0.05 * expected);
  }
}

TEST(Philox, NoShortCycles) {
  Philox gen(3);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 4096; ++i) seen.insert(gen());
  // Collisions are possible but a short cycle would collapse the set.
  EXPECT_GT(seen.size(), 4000u);
}

}  // namespace
}  // namespace nnr::rng
