// Statistical quality of the Philox-backed Generator: chi-square uniformity,
// serial correlation, KS normality, permutation position uniformity, and
// channel independence. These are the properties the noise study leans on —
// a biased init stream or correlated channels would contaminate the
// ALGO/IMPL decomposition.
#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/generator.h"
#include "rng/seed_channels.h"

namespace nnr::rng {
namespace {

constexpr int kSamples = 200000;

TEST(GeneratorStatistics, UniformPassesChiSquare) {
  Generator gen(1234);
  constexpr int kBins = 64;
  std::array<int, kBins> counts{};
  for (int i = 0; i < kSamples; ++i) {
    const float u = gen.uniform();
    const int bin = std::min(kBins - 1, static_cast<int>(u * kBins));
    ++counts[static_cast<std::size_t>(bin)];
  }
  const double expected = static_cast<double>(kSamples) / kBins;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 63 degrees of freedom; p = 0.001 critical value is ~103.4.
  EXPECT_LT(chi2, 103.4) << "uniform() fails chi-square uniformity";
}

TEST(GeneratorStatistics, UniformSerialCorrelationIsSmall) {
  Generator gen(99);
  double prev = gen.uniform();
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_x2 = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = prev;
    const double y = gen.uniform();
    sum_xy += x * y;
    sum_x += x;
    sum_x2 += x * x;
    prev = y;
  }
  const double n = kSamples;
  const double mean = sum_x / n;
  const double var = sum_x2 / n - mean * mean;
  const double cov = sum_xy / n - mean * mean;
  const double corr = cov / var;
  // For i.i.d. samples, corr ~ N(0, 1/n): |corr| < 4/sqrt(n) at ~6 sigma.
  EXPECT_LT(std::fabs(corr), 4.0 / std::sqrt(n));
}

TEST(GeneratorStatistics, NormalPassesKolmogorovSmirnov) {
  Generator gen(777);
  constexpr int kN = 20000;
  std::vector<double> samples(kN);
  for (double& s : samples) s = gen.normal();
  std::sort(samples.begin(), samples.end());

  auto phi = [](double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); };
  double d_stat = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double cdf = phi(samples[static_cast<std::size_t>(i)]);
    const double hi = (i + 1.0) / kN - cdf;
    const double lo = cdf - static_cast<double>(i) / kN;
    d_stat = std::max({d_stat, hi, lo});
  }
  // KS critical value at alpha = 0.001: ~1.95 / sqrt(n).
  EXPECT_LT(d_stat, 1.95 / std::sqrt(static_cast<double>(kN)));
}

TEST(GeneratorStatistics, NormalTailMassIsPlausible) {
  Generator gen(4242);
  int beyond_2 = 0;
  int beyond_3 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const float x = std::fabs(gen.normal());
    if (x > 2.0F) ++beyond_2;
    if (x > 3.0F) ++beyond_3;
  }
  const double rate2 = static_cast<double>(beyond_2) / kSamples;
  const double rate3 = static_cast<double>(beyond_3) / kSamples;
  EXPECT_NEAR(rate2, 0.0455, 0.004);   // P(|Z| > 2)
  EXPECT_NEAR(rate3, 0.0027, 0.0012);  // P(|Z| > 3)
}

TEST(GeneratorStatistics, PermutationPositionsAreUniform) {
  // Every value should land in every position with equal probability:
  // chi-square over the (value 0's position) distribution.
  constexpr int kLen = 16;
  constexpr int kTrials = 32000;
  Generator gen(31);
  std::array<int, kLen> position_counts{};
  for (int t = 0; t < kTrials; ++t) {
    const std::vector<std::uint32_t> perm =
        gen.permutation(static_cast<std::size_t>(kLen));
    for (int pos = 0; pos < kLen; ++pos) {
      if (perm[static_cast<std::size_t>(pos)] == 0) {
        ++position_counts[static_cast<std::size_t>(pos)];
        break;
      }
    }
  }
  const double expected = static_cast<double>(kTrials) / kLen;
  double chi2 = 0.0;
  for (const int c : position_counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 degrees of freedom; p = 0.001 critical value is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(GeneratorStatistics, ChannelsAreUncorrelated) {
  // Streams split from the same base seed must behave as independent
  // sources; correlation between matched draws should vanish.
  auto a = make_channel_generator(2024, Channel::kInit, 0, true);
  auto b = make_channel_generator(2024, Channel::kShuffle, 0, true);
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_x2 = 0.0;
  double sum_y2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double n = kN;
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double var_x = sum_x2 / n - (sum_x / n) * (sum_x / n);
  const double var_y = sum_y2 / n - (sum_y / n) * (sum_y / n);
  const double corr = cov / std::sqrt(var_x * var_y);
  EXPECT_LT(std::fabs(corr), 4.0 / std::sqrt(n));
}

TEST(GeneratorStatistics, ReplicatesOfAVaryingChannelDiverge) {
  auto r0 = make_channel_generator(7, Channel::kInit, 0, true);
  auto r1 = make_channel_generator(7, Channel::kInit, 1, true);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (r0.uniform() == r1.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);  // float collisions are possible but must be rare
}

TEST(GeneratorStatistics, PinnedChannelIgnoresReplicateIndex) {
  auto r0 = make_channel_generator(7, Channel::kInit, 0, false);
  auto r1 = make_channel_generator(7, Channel::kInit, 1, false);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(r0.uniform(), r1.uniform());
  }
}

}  // namespace
}  // namespace nnr::rng
