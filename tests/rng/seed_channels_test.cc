#include "rng/seed_channels.h"

#include <gtest/gtest.h>

#include <set>

namespace nnr::rng {
namespace {

TEST(SeedChannels, DeriveSeedIsPure) {
  EXPECT_EQ(derive_seed(1, Channel::kInit, 0), derive_seed(1, Channel::kInit, 0));
}

TEST(SeedChannels, ChannelsNeverAlias) {
  std::set<std::uint64_t> seeds;
  for (Channel c : {Channel::kInit, Channel::kShuffle, Channel::kAugment,
                    Channel::kDropout, Channel::kScheduler}) {
    for (std::uint64_t rep = 0; rep < 16; ++rep) {
      seeds.insert(derive_seed(42, c, rep));
    }
  }
  EXPECT_EQ(seeds.size(), 5u * 16u);
}

TEST(SeedChannels, ReplicateChangesSeed) {
  EXPECT_NE(derive_seed(7, Channel::kShuffle, 0),
            derive_seed(7, Channel::kShuffle, 1));
}

TEST(SeedChannels, BaseSeedChangesSeed) {
  EXPECT_NE(derive_seed(7, Channel::kShuffle, 0),
            derive_seed(8, Channel::kShuffle, 0));
}

TEST(SeedChannels, PinnedChannelIgnoresReplicate) {
  // varying=false => every replicate gets replicate-0's stream.
  Generator rep0 = make_channel_generator(9, Channel::kInit, 0, false);
  Generator rep5 = make_channel_generator(9, Channel::kInit, 5, false);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(rep0.next_u32(), rep5.next_u32());
  }
}

TEST(SeedChannels, VaryingChannelDiffersByReplicate) {
  Generator rep0 = make_channel_generator(9, Channel::kInit, 0, true);
  Generator rep5 = make_channel_generator(9, Channel::kInit, 5, true);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (rep0.next_u32() != rep5.next_u32()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(SeedChannels, VaryingReplicateZeroMatchesPinned) {
  // The pinned stream is defined as replicate 0's stream, so IMPL-variant
  // replicate 0 shares algorithmic draws with ALGO-variant replicate 0.
  Generator pinned = make_channel_generator(9, Channel::kAugment, 3, false);
  Generator varying0 = make_channel_generator(9, Channel::kAugment, 0, true);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(pinned.next_u32(), varying0.next_u32());
  }
}

}  // namespace
}  // namespace nnr::rng
