// Model update: ship a retrained model without churning your users.
//
// Scenario (Milani Fard et al. 2016, the paper's churn reference): a model
// is live; new data arrives; you must retrain. A cold retrain gives a
// successor that disagrees with the live model on many individuals even at
// equal accuracy — exactly the instability the paper measures. This example
// compares three update policies on the same data refresh:
//
//   cold     retrain from scratch (new init draw)
//   warm     initialize from the live model's weights, short fine-tune
//   ensemble keep K=3 independent models live, vote, and warm-update each
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/model_update
#include <cstdio>
#include <vector>

#include "core/churn_reduction.h"
#include "core/replicates.h"
#include "core/tasks.h"
#include "metrics/stability.h"

int main() {
  using namespace nnr;
  std::printf("nnrand model update: cold vs warm vs ensemble refresh\n\n");

  core::Task task = core::small_cnn_bn_cifar10();
  task.recipe.epochs = core::env_int("NNR_EPOCHS", 12);

  // The "live" deployment: three independently trained models (replicates
  // 0..2). Model 0 is the single-model deployment; all three form the
  // ensemble deployment.
  const core::TrainJob job =
      task.job(core::NoiseVariant::kAlgoPlusImpl, hw::v100());
  std::printf("training 3 live models (ALGO+IMPL, V100)...\n");
  const auto live = core::run_replicates(job, 3, 0);

  // --- Policy 1: cold retrain (a fresh replicate id = fresh init). ---
  std::printf("policy 1: cold retrain...\n");
  const core::RunResult cold = core::train_replicate(job, /*replicate=*/10);
  const double cold_churn =
      metrics::churn(live[0].test_predictions, cold.test_predictions);

  // --- Policy 2: warm fine-tune of the live model. ---
  std::printf("policy 2: warm fine-tune...\n");
  core::TrainJob warm_job = job;
  warm_job.recipe.epochs = std::max<std::int64_t>(1, task.recipe.epochs / 4);
  const core::RunResult warm =
      core::train_warm_replicate(warm_job, /*replicate=*/11,
                                 live[0].final_weights);
  const double warm_churn =
      metrics::churn(live[0].test_predictions, warm.test_predictions);

  // --- Policy 3: ensemble of warm updates. ---
  std::printf("policy 3: ensemble of warm updates...\n");
  std::vector<std::vector<std::int32_t>> old_votes;
  std::vector<std::vector<std::int32_t>> new_votes;
  for (std::size_t k = 0; k < live.size(); ++k) {
    old_votes.push_back(live[k].test_predictions);
    const core::RunResult updated = core::train_warm_replicate(
        warm_job, /*replicate=*/20 + k, live[k].final_weights);
    new_votes.push_back(updated.test_predictions);
  }
  const double ensemble_churn =
      metrics::churn(core::ensemble_vote(old_votes, 10),
                     core::ensemble_vote(new_votes, 10));

  std::printf("\nuser-visible churn of each update policy:\n");
  std::printf("  cold retrain:           %6.2f%%\n", cold_churn * 100.0);
  std::printf("  warm fine-tune:         %6.2f%%\n", warm_churn * 100.0);
  std::printf("  warm ensemble (K=3):    %6.2f%%\n", ensemble_churn * 100.0);
  std::printf(
      "\nTakeaway: warm starting keeps the successor in the live model's "
      "basin and voting integrates out what noise remains — the same "
      "accuracy, a fraction of the user-visible flips.\n");
  return 0;
}
