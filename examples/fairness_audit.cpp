// Fairness audit: the paper's AI-safety motivation in miniature.
//
// Trains N replicates of a face-attribute classifier (SynthCelebA stand-in)
// that differ only in training noise, then reports how much each protected
// sub-group's error rates move between runs. Groups with few positive
// examples (Male, Old — paper Table 3) show disproportionately unstable
// FNR/accuracy: the model a user receives depends on scheduler luck.
//
// Run: ./build/examples/fairness_audit   (NNR_REPLICATES / NNR_EPOCHS to scale)
#include <cstdio>
#include <vector>

#include "core/replicates.h"
#include "core/study.h"
#include "core/tasks.h"
#include "data/synth_celeba.h"
#include "nn/zoo.h"

int main() {
  using namespace nnr;
  std::printf("nnrand fairness audit: sub-group stability under training "
              "noise\n\n");

  const core::Scale scale = core::resolve_scale(6, 8, 2048, 1024);
  data::SynthCelebAConfig cfg;
  cfg.train_n = scale.train_n;
  cfg.test_n = scale.test_n;
  const data::AttributeDataset celeba = data::make_synth_celeba(cfg);

  core::Task task;
  task.name = "CelebA* audit";
  task.dataset.name = celeba.name;
  task.dataset.train.images = celeba.train.images;
  task.dataset.train.num_classes = 2;
  for (std::uint8_t t : celeba.train.target) {
    task.dataset.train.labels.push_back(t);
  }
  task.dataset.test.images = celeba.test.images;
  task.dataset.test.num_classes = 2;
  for (std::uint8_t t : celeba.test.target) {
    task.dataset.test.labels.push_back(t);
  }
  task.make_model = [] { return nn::resnet18s(2); };
  task.recipe = core::celeba_recipe(scale.epochs);
  task.recipe.base_lr = 0.02F;

  std::printf("training %lld replicates under ALGO+IMPL noise...\n",
              static_cast<long long>(scale.replicates));
  const core::TrainJob job =
      task.job(core::NoiseVariant::kAlgoPlusImpl, hw::v100());
  const auto results = core::run_replicates(job, scale.replicates, 0);

  auto audit = [&](const char* group, std::vector<std::uint8_t> mask) {
    const core::SubgroupStability stats =
        core::subgroup_stability(results, celeba.test.target, mask);
    std::printf("  %-7s acc %5.1f%% (+/- %4.2f)   FNR %5.1f%% (+/- %4.2f)\n",
                group, 100.0 * stats.accuracy.mean(),
                100.0 * stats.accuracy.stddev(), 100.0 * stats.fnr.mean(),
                100.0 * stats.fnr.stddev());
    return stats;
  };

  std::vector<std::uint8_t> female(celeba.test.male.size());
  std::vector<std::uint8_t> old(celeba.test.young.size());
  for (std::size_t i = 0; i < female.size(); ++i) {
    female[i] = celeba.test.male[i] ? 0 : 1;
    old[i] = celeba.test.young[i] ? 0 : 1;
  }

  std::printf("\nper-group metrics (mean +/- stddev over replicates):\n");
  const auto all = audit("All", {});
  const auto male = audit("Male", celeba.test.male);
  audit("Female", female);
  audit("Young", celeba.test.young);
  const auto old_stats = audit("Old", old);

  const double acc_amp =
      all.accuracy.stddev() > 0
          ? old_stats.accuracy.stddev() / all.accuracy.stddev()
          : 0.0;
  const double fnr_amp =
      all.fnr.stddev() > 0 ? male.fnr.stddev() / all.fnr.stddev() : 0.0;
  std::printf("\nOld-group accuracy is %.1fx as unstable as the overall "
              "metric; Male-group FNR is %.1fx as unstable.\n",
              acc_amp, fnr_amp);
  std::printf("Paper (full scale): 3.3x and 4.6x respectively — a model "
              "audit that only checks top-line accuracy misses this.\n");
  return 0;
}
