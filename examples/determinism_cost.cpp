// Determinism-cost advisor: should you flip the deterministic-ops flag?
//
// For a chosen network and GPU generation, prints the simulated per-step
// kernel-time breakdown in default vs deterministic mode and the projected
// slowdown — the paper's §4 analysis packaged as a decision aid.
//
// Run: ./build/examples/determinism_cost [network] [gpu]
//   network: vgg16|vgg19|resnet50|resnet152|densenet121|densenet201|
//            inception|xception|mobilenet|efficientnet   (default vgg19)
//   gpu:     p100|v100|t4                                (default v100)
#include <cstdio>
#include <string>

#include "core/table.h"
#include "profiler/cost_model.h"
#include "profiler/report.h"

namespace {

using namespace nnr;

profiler::NetworkDesc pick_network(const std::string& name) {
  if (name == "vgg16") return profiler::vgg16_desc();
  if (name == "vgg19") return profiler::vgg19_desc();
  if (name == "resnet50") return profiler::resnet50_desc();
  if (name == "resnet152") return profiler::resnet152_desc();
  if (name == "densenet121") return profiler::densenet121_desc();
  if (name == "densenet201") return profiler::densenet201_desc();
  if (name == "inception") return profiler::inception_v3_desc();
  if (name == "xception") return profiler::xception_desc();
  if (name == "mobilenet") return profiler::mobilenet_desc();
  if (name == "efficientnet") return profiler::efficientnet_b0_desc();
  std::fprintf(stderr, "unknown network '%s', using vgg19\n", name.c_str());
  return profiler::vgg19_desc();
}

hw::GpuArch pick_arch(const std::string& name) {
  if (name == "p100") return hw::GpuArch::kPascal;
  if (name == "t4") return hw::GpuArch::kTuring;
  if (name != "v100") {
    std::fprintf(stderr, "unknown gpu '%s', using v100\n", name.c_str());
  }
  return hw::GpuArch::kVolta;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string net_name = argc > 1 ? argv[1] : "vgg19";
  const std::string gpu_name = argc > 2 ? argv[2] : "v100";
  const profiler::NetworkDesc net = pick_network(net_name);
  const hw::GpuArch arch = pick_arch(gpu_name);
  const profiler::CostModel model = profiler::CostModel::for_arch(arch);

  std::printf("nnrand determinism-cost advisor\n");
  std::printf("network: %s (%.1f GMACs/image), gpu: %s, batch 64\n\n",
              net.name.c_str(), net.total_macs() / 1e9, gpu_name.c_str());

  double default_ms = 0.0;
  double det_ms = 0.0;
  for (const auto mode : {hw::DeterminismMode::kDefault,
                          hw::DeterminismMode::kDeterministic}) {
    const auto launches = model.lower_step(net, mode, 64);
    const auto aggregated = profiler::aggregate_by_type(launches);
    double total = 0.0;
    for (const auto& entry : aggregated) total += entry.total_ms;
    (mode == hw::DeterminismMode::kDefault ? default_ms : det_ms) = total;

    core::TextTable table({"Kernel type", "ms/step", "share"});
    for (const auto& entry : profiler::top_k(aggregated, 8)) {
      table.add_row({entry.kernel_type, core::fmt_float(entry.total_ms, 2),
                     core::fmt_pct(100.0 * entry.total_ms / total, 1)});
    }
    std::printf("%s\n",
                table
                    .render(mode == hw::DeterminismMode::kDefault
                                ? "default mode (top kernels)"
                                : "deterministic mode (top kernels)")
                    .c_str());
  }

  const double pct = 100.0 * det_ms / default_ms;
  std::printf("projected step time: %.1f ms -> %.1f ms  (%.0f%% of baseline)\n",
              default_ms, det_ms, pct);
  if (pct < 115.0) {
    std::printf("verdict: determinism is nearly free here — turn it on.\n");
  } else if (pct < 175.0) {
    std::printf("verdict: moderate cost; justified for safety-critical or "
                "audit-sensitive training.\n");
  } else {
    std::printf("verdict: heavy cost; consider deterministic runs only for "
                "release/audit builds, or a newer GPU generation.\n");
  }
  return 0;
}
