// Checkpoint/resume under a determinism contract: save a half-trained model,
// reload it, continue training, and verify the resumed run is bitwise
// identical to an uninterrupted one. Then show why this only holds in
// deterministic mode — under default kernels the two arms drift.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/checkpoint_resume
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "data/synth_images.h"
#include "hw/device.h"
#include "hw/execution_context.h"
#include "metrics/stability.h"
#include "nn/loss.h"
#include "nn/zoo.h"
#include "opt/sgd.h"
#include "rng/generator.h"
#include "serialize/checkpoint.h"

namespace {

using namespace nnr;

/// Trains `steps` mini-batch steps on a fixed batch under the given mode.
void train_steps(nn::Model& model, const tensor::Tensor& batch,
                 const std::vector<std::int32_t>& labels, int steps,
                 hw::DeterminismMode mode, std::uint64_t entropy_seed) {
  hw::ExecutionContext hw_ctx(hw::v100(), mode, rng::Generator(entropy_seed));
  nn::RunContext ctx{.hw = &hw_ctx, .training = true};
  opt::Sgd sgd(model.params(), 0.9F);
  for (int s = 0; s < steps; ++s) {
    model.zero_grads();
    const tensor::Tensor logits = model.forward(batch, ctx);
    const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels, ctx);
    (void)model.backward(loss.grad_logits, ctx);
    sgd.step(0.02F);
  }
}

double max_weight_gap(nn::Model& a, nn::Model& b) {
  const std::vector<float> wa = a.flat_weights();
  const std::vector<float> wb = b.flat_weights();
  double max_gap = 0.0;
  for (std::size_t i = 0; i < wa.size(); ++i) {
    max_gap = std::max(max_gap, std::abs(static_cast<double>(wa[i]) - wb[i]));
  }
  return max_gap;
}

}  // namespace

int main() {
  std::printf("checkpoint_resume: is save/load a source of noise?\n\n");

  // A fixed training batch from the CIFAR-10 stand-in (the first 32 train
  // images; [N, 3, H, W] is contiguous so the batch is a prefix copy).
  // The generator rounds split sizes to class multiples, so request extra.
  const data::ClassificationDataset dataset =
      data::synth_cifar10(/*train_n=*/40, /*test_n=*/10);
  tensor::Tensor batch(tensor::Shape{32, 3, 16, 16});
  for (std::int64_t i = 0; i < batch.numel(); ++i) {
    batch.at(i) = dataset.train.images.at(i);
  }
  const std::vector<std::int32_t> labels(dataset.train.labels.begin(),
                                         dataset.train.labels.begin() + 32);

  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "resume_demo.nnr").string();

  // Arm A: 6 steps uninterrupted (optimizer restarted at step 3 to mirror
  // the resume arm, which necessarily restarts its optimizer).
  nn::Model arm_a = nn::small_cnn(10, true);
  rng::Generator init_a(42);
  arm_a.init_weights(init_a);
  train_steps(arm_a, batch, labels, 3, hw::DeterminismMode::kDeterministic, 0);
  train_steps(arm_a, batch, labels, 3, hw::DeterminismMode::kDeterministic, 0);

  // Arm B: 3 steps, checkpoint, reload into a fresh model, 3 more steps.
  nn::Model arm_b = nn::small_cnn(10, true);
  rng::Generator init_b(42);
  arm_b.init_weights(init_b);
  train_steps(arm_b, batch, labels, 3, hw::DeterminismMode::kDeterministic, 0);
  serialize::save_model(ckpt, arm_b);

  nn::Model resumed = nn::small_cnn(10, true);
  serialize::load_model(ckpt, resumed);
  train_steps(resumed, batch, labels, 3, hw::DeterminismMode::kDeterministic,
              0);

  const double det_gap = max_weight_gap(arm_a, resumed);
  std::printf("deterministic mode:\n");
  std::printf("  max |w_uninterrupted - w_resumed| = %.3g  ->  %s\n\n",
              det_gap,
              det_gap == 0.0 ? "bitwise identical (checkpoint is lossless)"
                             : "MISMATCH (bug!)");

  // Same comparison under default (nondeterministic) kernels: now the two
  // arms see different scheduler interleavings and drift apart — the drift
  // is the tooling noise, not the checkpoint.
  nn::Model noisy_a = nn::small_cnn(10, true);
  rng::Generator init_c(42);
  noisy_a.init_weights(init_c);
  train_steps(noisy_a, batch, labels, 6, hw::DeterminismMode::kDefault, 1);

  nn::Model noisy_b = nn::small_cnn(10, true);
  rng::Generator init_d(42);
  noisy_b.init_weights(init_d);
  train_steps(noisy_b, batch, labels, 3, hw::DeterminismMode::kDefault, 2);
  serialize::save_model(ckpt, noisy_b);
  nn::Model noisy_resumed = nn::small_cnn(10, true);
  serialize::load_model(ckpt, noisy_resumed);
  train_steps(noisy_resumed, batch, labels, 3, hw::DeterminismMode::kDefault,
              3);

  const double noisy_gap = max_weight_gap(noisy_a, noisy_resumed);
  std::printf("default (nondeterministic) kernels:\n");
  std::printf("  max |w_uninterrupted - w_resumed| = %.3g\n", noisy_gap);
  std::printf("  -> nonzero drift comes from scheduler noise, which resume "
              "cannot replay.\n\n");

  std::printf("Takeaway: the checkpoint format itself is bitwise lossless; "
              "whether a resumed run replays exactly is decided by the "
              "determinism mode of the kernels, not by the checkpoint.\n");
  std::remove(ckpt.c_str());
  return det_gap == 0.0 ? 0 : 1;
}
