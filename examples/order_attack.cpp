// Data-order sensitivity as an attack surface (Shumailov et al. 2021,
// "Manipulating SGD with data ordering attacks", cited in the paper's
// Appendix A): everything about training is pinned — init, augmentation,
// kernels — and ONLY the order in which the same examples are visited
// changes. An adversary who controls nothing but the batch schedule steers
// the final model.
//
// Three schedules over identical data:
//   natural    - the identity order,
//   shuffled   - a benign random permutation,
//   adversarial- easy-first curriculum (sorted by how confidently a probe
//                model classifies each example), which biases early SGD
//                steps toward a subset of the distribution.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/order_attack
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "data/synth_images.h"
#include "hw/device.h"
#include "hw/execution_context.h"
#include "metrics/classification.h"
#include "metrics/stability.h"
#include "nn/loss.h"
#include "nn/zoo.h"
#include "opt/sgd.h"
#include "rng/generator.h"

namespace {

using namespace nnr;

struct TrainedModel {
  std::vector<float> weights;
  std::vector<std::int32_t> test_predictions;
  double test_accuracy = 0.0;
};

/// Trains the SmallCNN+BN with every noise source pinned; only `order`
/// differs between calls.
TrainedModel train_with_order(const data::ClassificationDataset& dataset,
                              const std::vector<std::uint32_t>& order,
                              int epochs, std::int64_t batch_size) {
  hw::ExecutionContext hw_ctx(hw::v100(), hw::DeterminismMode::kDeterministic,
                              rng::Generator(0));
  nn::RunContext ctx{.hw = &hw_ctx, .training = true};

  nn::Model model = nn::small_cnn(10, /*with_batchnorm=*/true);
  rng::Generator init(1234);  // identical across schedules
  model.init_weights(init);
  opt::Sgd sgd(model.params(), 0.9F);

  const data::LabeledImages& train = dataset.train;
  const std::int64_t hw_numel = 3 * 16 * 16;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(batch_size));
      const auto n = static_cast<std::int64_t>(end - start);
      tensor::Tensor batch(tensor::Shape{n, 3, 16, 16});
      std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        const std::uint32_t src = order[start + static_cast<std::size_t>(i)];
        for (std::int64_t j = 0; j < hw_numel; ++j) {
          batch.at(i * hw_numel + j) = train.images.at(src * hw_numel + j);
        }
        labels[static_cast<std::size_t>(i)] = train.labels[src];
      }
      model.zero_grads();
      const tensor::Tensor logits = model.forward(batch, ctx);
      const nn::LossResult loss = nn::softmax_cross_entropy(logits, labels, ctx);
      (void)model.backward(loss.grad_logits, ctx);
      sgd.step(0.01F);
    }
  }

  TrainedModel result;
  result.weights = model.flat_weights();
  nn::RunContext eval{.hw = &hw_ctx, .training = false};
  const data::LabeledImages& test = dataset.test;
  const tensor::Tensor logits = model.forward(test.images, eval);
  const std::int64_t classes = logits.shape()[1];
  for (std::int64_t r = 0; r < logits.shape()[0]; ++r) {
    const float* row = logits.raw() + r * classes;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    result.test_predictions.push_back(static_cast<std::int32_t>(best));
  }
  result.test_accuracy =
      metrics::accuracy(result.test_predictions, test.labels);
  return result;
}

/// Scores each training example by a probe model's confidence on its true
/// class — the adversary's easy-first curriculum key.
std::vector<std::uint32_t> adversarial_order(
    const data::ClassificationDataset& dataset) {
  hw::ExecutionContext hw_ctx(hw::v100(), hw::DeterminismMode::kDeterministic,
                              rng::Generator(0));
  nn::Model probe = nn::small_cnn(10, true);
  rng::Generator init(99);
  probe.init_weights(init);
  nn::RunContext eval{.hw = &hw_ctx, .training = false};
  const data::LabeledImages& train = dataset.train;
  const tensor::Tensor logits = probe.forward(train.images, eval);

  std::vector<float> confidence(static_cast<std::size_t>(train.size()));
  for (std::int64_t i = 0; i < train.size(); ++i) {
    confidence[static_cast<std::size_t>(i)] =
        logits.at(i, train.labels[static_cast<std::size_t>(i)]);
  }
  std::vector<std::uint32_t> order(static_cast<std::size_t>(train.size()));
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return confidence[a] > confidence[b];
                   });
  return order;
}

}  // namespace

int main() {
  std::printf("order_attack: can batch order alone steer training?\n\n");
  const data::ClassificationDataset dataset = data::synth_cifar10(400, 200);
  const auto n = static_cast<std::size_t>(dataset.train.size());
  const int epochs = 8;
  const std::int64_t batch = 32;

  std::vector<std::uint32_t> natural(n);
  std::iota(natural.begin(), natural.end(), 0U);

  std::vector<std::uint32_t> shuffled = natural;
  rng::Generator perm(777);
  perm.shuffle(std::span<std::uint32_t>(shuffled));

  const std::vector<std::uint32_t> adversarial = adversarial_order(dataset);

  std::printf("training 3 models; ONLY the visit order differs...\n\n");
  const TrainedModel m_nat = train_with_order(dataset, natural, epochs, batch);
  const TrainedModel m_shuf =
      train_with_order(dataset, shuffled, epochs, batch);
  const TrainedModel m_adv =
      train_with_order(dataset, adversarial, epochs, batch);

  std::printf("accuracy: natural %.2f%%  shuffled %.2f%%  adversarial "
              "%.2f%%\n",
              100.0 * m_nat.test_accuracy, 100.0 * m_shuf.test_accuracy,
              100.0 * m_adv.test_accuracy);
  std::printf("churn(natural, shuffled)     = %5.2f%%\n",
              100.0 * metrics::churn(m_nat.test_predictions,
                                     m_shuf.test_predictions));
  std::printf("churn(natural, adversarial)  = %5.2f%%\n",
              100.0 * metrics::churn(m_nat.test_predictions,
                                     m_adv.test_predictions));
  std::printf("L2(natural, shuffled)        = %.4f\n",
              metrics::normalized_l2_distance(m_nat.weights, m_shuf.weights));
  std::printf("L2(natural, adversarial)     = %.4f\n\n",
              metrics::normalized_l2_distance(m_nat.weights, m_adv.weights));

  std::printf(
      "Takeaway: with init, augmentation and kernels all pinned, the visit "
      "order alone moves predictions on a sizable fraction of the test set "
      "— the paper's Fig. 6 mechanism, weaponized as in Shumailov et al. "
      "2021. Auditing pipelines must treat the data schedule as part of the "
      "model's provenance.\n");
  return 0;
}
