// Release gate: decide, with error bars, whether a candidate training setup
// is stable enough to ship.
//
// Scenario (the paper's motivating AI-safety setting, §1): a team retrains a
// model regularly and must bound how much predictions may drift between
// "identical" releases. This example trains N replicates under the team's
// real setup (ALGO+IMPL on a V100), then uses the stats library to answer
// three release questions:
//
//   1. What is the churn between consecutive releases, with a 95% CI?
//   2. Is the variance of accuracy distinguishable from the deterministic
//      CONTROL setup (Brown-Forsythe)?
//   3. If we ship a K=3 ensemble instead, how much churn do we buy back?
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/release_gate [churn budget %, default 10]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/churn_reduction.h"
#include "core/replicates.h"
#include "core/tasks.h"
#include "metrics/stability.h"
#include "rng/generator.h"
#include "stats/bootstrap.h"
#include "stats/hypothesis.h"

int main(int argc, char** argv) {
  using namespace nnr;
  const double churn_budget_pct = argc > 1 ? std::atof(argv[1]) : 10.0;
  std::printf("nnrand release gate: churn budget %.1f%%\n\n",
              churn_budget_pct);

  core::Task task = core::small_cnn_bn_cifar10();
  task.recipe.epochs = core::env_int("NNR_EPOCHS", 12);
  const auto replicates = core::env_int("NNR_REPLICATES", 8);

  std::printf("training %lld replicates under ALGO+IMPL (V100)...\n",
              static_cast<long long>(replicates));
  const core::TrainJob job =
      task.job(core::NoiseVariant::kAlgoPlusImpl, hw::v100());
  const auto runs = core::run_replicates(job, replicates, 0);

  // Question 1: churn between consecutive releases, with an error bar.
  const std::size_t n = runs.size();
  std::vector<std::vector<double>> pair_churn(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      pair_churn[i][j] = metrics::churn(runs[i].test_predictions,
                                        runs[j].test_predictions);
    }
  }
  rng::Generator boot(0x6A7E);
  const stats::BootstrapCI churn_ci =
      stats::bootstrap_pairwise_ci(pair_churn, 2000, 0.95, boot);
  std::printf("  churn between releases: %.2f%%  (95%% CI [%.2f%%, %.2f%%])\n",
              churn_ci.point * 100.0, churn_ci.lo * 100.0,
              churn_ci.hi * 100.0);

  // Question 2: is accuracy variance real, relative to CONTROL?
  core::TrainJob control_job = job;
  control_job.variant = core::NoiseVariant::kControl;
  // CONTROL replicates are bitwise identical, so 3 suffice to anchor the
  // zero-variance group.
  const auto control_runs = core::run_replicates(control_job, 3, 0);
  std::vector<double> acc;
  std::vector<double> control_acc;
  for (const auto& r : runs) acc.push_back(r.test_accuracy);
  for (const auto& r : control_runs) control_acc.push_back(r.test_accuracy);
  const std::vector<std::vector<double>> groups = {acc, control_acc};
  const stats::TestResult bf = stats::brown_forsythe_test(groups);
  std::printf(
      "  Var(acc) vs CONTROL: Brown-Forsythe F = %.2f, p = %.4f -> %s\n",
      bf.statistic, bf.p_value,
      bf.p_value < 0.05 ? "variance is real" : "not distinguishable");

  // Question 3: the K=3 ensemble alternative.
  if (n >= 6) {
    const double k3 = core::ensemble_pair_churn(runs, 3, 10);
    std::printf("  K=3 ensemble churn: %.2f%% (%.0f%% of single-model)\n",
                k3 * 100.0,
                churn_ci.point > 0.0 ? 100.0 * k3 / churn_ci.point : 0.0);
  }

  // The gate: pass only when the UPPER confidence bound fits the budget —
  // a point estimate under the budget with a CI spilling over is a fail.
  const bool pass = churn_ci.hi * 100.0 <= churn_budget_pct;
  std::printf("\ngate: upper CI bound %.2f%% vs budget %.1f%% -> %s\n",
              churn_ci.hi * 100.0, churn_budget_pct,
              pass ? "PASS" : "FAIL (consider deterministic mode, a larger "
                              "ensemble, or a wider budget)");
  return pass ? 0 : 1;
}
