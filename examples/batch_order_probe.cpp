// Batch-order probe: demonstrates the paper's Fig. 6 effect interactively —
// on an inherently deterministic accelerator (TPU), merely reordering the
// training data changes the trained model, even in full-batch mode where the
// gradient is mathematically order-invariant.
//
// Run: ./build/examples/batch_order_probe
#include <cstdio>

#include "core/replicates.h"
#include "core/tasks.h"
#include "metrics/stability.h"
#include "nn/zoo.h"

int main() {
  using namespace nnr;
  std::printf("nnrand batch-order probe (TPU, full-batch training)\n\n");

  const core::Scale scale = core::resolve_scale(2, 20, 256, 128);
  const data::ClassificationDataset dataset =
      data::synth_cifar10(scale.train_n, scale.test_n);

  // Everything pinned except the order in which examples are laid out.
  core::ChannelToggles order_only;
  order_only.shuffle_varies = true;

  core::TrainJob job;
  job.make_model = [] { return nn::small_cnn(10, true); };
  job.dataset = &dataset;
  job.recipe = core::cifar_recipe(scale.epochs);
  job.recipe.batch_size = dataset.train.size();  // one batch = whole dataset
  job.recipe.base_lr = 0.02F;
  job.recipe.augment = false;
  job.device = hw::tpu_v2();
  job.toggles_override = order_only;

  std::printf("training 2 full-batch replicates that differ only in row "
              "order...\n");
  const auto results = core::run_replicates(job, 2, 0);

  std::size_t weight_diffs = 0;
  for (std::size_t i = 0; i < results[0].final_weights.size(); ++i) {
    if (results[0].final_weights[i] != results[1].final_weights[i]) {
      ++weight_diffs;
    }
  }
  const double churn = metrics::churn(results[0].test_predictions,
                                      results[1].test_predictions);
  std::printf("  weights differing bitwise: %zu / %zu\n", weight_diffs,
              results[0].final_weights.size());
  std::printf("  predictive churn: %.2f%%\n\n", 100.0 * churn);
  std::printf(
      "Both runs saw identical batches (the full dataset) — the only "
      "difference is the float32 accumulation order induced by row layout. "
      "Deterministic hardware does not make training order-invariant.\n");
  return weight_diffs > 0 ? 0 : 1;
}
