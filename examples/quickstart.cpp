// Quickstart: train the same network twice on a simulated V100 — once with
// default (nondeterministic) kernels, once in deterministic mode — and
// measure how far the two "identical" trainings drift apart.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/replicates.h"
#include "core/study.h"
#include "core/tasks.h"
#include "metrics/stability.h"

int main() {
  using namespace nnr;
  std::printf("nnrand quickstart: how noisy is your training stack?\n\n");

  // 1. A benchmark cell: scaled SmallCNN on the CIFAR-10 stand-in.
  core::Task task = core::small_cnn_bn_cifar10();
  task.recipe.epochs = core::env_int("NNR_EPOCHS", 12);

  // 2. Train two replicates that differ ONLY in simulated GPU scheduling
  //    (same seeds for init / shuffling / augmentation).
  core::TrainJob job = task.job(core::NoiseVariant::kImpl, hw::v100());
  std::printf("training 2 replicates under IMPL noise (V100, default "
              "kernels)...\n");
  const auto noisy = core::run_replicates(job, 2, 0);

  const double churn =
      metrics::churn(noisy[0].test_predictions, noisy[1].test_predictions);
  const double l2 = metrics::normalized_l2_distance(noisy[0].final_weights,
                                                    noisy[1].final_weights);
  std::printf("  accuracies: %.2f%% vs %.2f%%\n",
              100.0 * noisy[0].test_accuracy, 100.0 * noisy[1].test_accuracy);
  std::printf("  predictive churn: %.2f%% of test examples flip\n",
              100.0 * churn);
  std::printf("  normalized L2 weight distance: %.6f\n\n", l2);

  // 3. Same experiment with deterministic kernels + pinned seeds (CONTROL):
  //    the two runs must be bitwise identical.
  job.variant = core::NoiseVariant::kControl;
  std::printf("training 2 replicates under CONTROL (deterministic mode)...\n");
  const auto controlled = core::run_replicates(job, 2, 0);
  const bool identical =
      controlled[0].final_weights == controlled[1].final_weights;
  std::printf("  bitwise identical weights: %s\n",
              identical ? "yes" : "NO (bug!)");
  std::printf("  churn: %.2f%%\n\n",
              100.0 * metrics::churn(controlled[0].test_predictions,
                                     controlled[1].test_predictions));

  std::printf("Takeaway: even with every seed pinned, default GPU kernels "
              "make training runs diverge; deterministic kernels remove that "
              "noise (at a training-speed cost — see "
              "./build/examples/determinism_cost).\n");
  return identical ? 0 : 1;
}
